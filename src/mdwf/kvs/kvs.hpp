// Flux-style key-value store for workflow synchronization.
//
// DYAD publishes per-file metadata (owner rank, size) through the Flux KVS
// and consumers discover data availability by lookup/watch.  The model
// captures the costs that matter to the paper:
//
//   - commits and lookups are RPCs to a broker node (network + queued
//     service time),
//   - the store is *eventually consistent*: a commit becomes visible to
//     lookups only after a propagation delay (Flux KVS caches/synchronizes
//     lazily), which is why a consumer arriving "too early" pays an extra
//     lookup + watch round — the paper's observation that larger models
//     stress the KVS less falls out of this mechanism,
//   - watches wake at visibility time, not commit time.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mdwf/common/bytes.hpp"
#include "mdwf/common/fence.hpp"
#include "mdwf/health/health.hpp"
#include "mdwf/health/quota.hpp"
#include "mdwf/net/network.hpp"
#include "mdwf/obs/trace.hpp"
#include "mdwf/sim/primitives.hpp"
#include "mdwf/sim/simulation.hpp"

namespace mdwf::kvs {

struct KvsParams {
  // Commits enqueue into the broker's commit pipeline and return quickly;
  // durability/visibility comes later (visibility_delay).  Lookups walk the
  // namespace synchronously and are the expensive operation.
  Duration commit_service = Duration::microseconds(40);
  Duration lookup_service = Duration::microseconds(250);
  std::int64_t server_concurrency = 4;
  // Commit-to-visibility propagation delay (eventual consistency).
  Duration visibility_delay = Duration::milliseconds(2);
};

struct KvsValue {
  std::string data;
  std::uint64_t version = 0;
};

class KvsServer {
 public:
  KvsServer(sim::Simulation& sim, const KvsParams& params,
            net::Network& network, net::NodeId server_node);

  const KvsParams& params() const { return params_; }
  net::NodeId node() const { return node_; }

  std::uint64_t commits() const { return commits_; }
  std::uint64_t lookups() const { return lookups_; }

  // Entries currently visible (test/introspection helper; no cost).
  std::size_t visible_entries() const;

  // --- Fault hooks (mdwf::fault) ------------------------------------------
  // Broker stall: requests queue at the broker but none are serviced until
  // the matching end call.  Nested windows stack.
  void fault_stall_begin();
  void fault_stall_end();
  bool stalled() const { return stall_depth_ > 0; }

  // Broker outage: a stall plus state loss — commits applied but not yet
  // *visible* are dropped (the Flux commit pipeline between apply and
  // propagation dies with the broker).  Recovery notifies listeners with
  // the lost keys so publishers can re-commit (DYAD's re-publish protocol).
  void fault_outage_begin();
  void fault_outage_end();
  void add_recovery_listener(
      std::function<void(const std::vector<std::string>&)> fn);
  std::uint64_t lost_commits() const { return lost_commits_; }

  // Overloaded-broker gray failure: every service time stretches by
  // `factor` (>= 1); 1.0 restores nominal speed.
  void set_service_dilation(double factor);
  double service_dilation() const { return dilation_; }

  // --- Backpressure (mdwf::health) ----------------------------------------
  // Bounded admission queue: a request arriving while `pending` (queued +
  // in service) is at the limit is shed with a retryable ServerBusy reply
  // instead of queueing without bound.  0 = unbounded (off).
  void set_admission_limit(std::uint32_t limit) { admission_limit_ = limit; }
  std::uint64_t sheds() const { return sheds_; }

  // Per-tenant fair-share quota (multi-tenant runs).  A request from a node
  // whose tenant is at its weighted bound is shed before it can consume
  // shared queue depth; unmapped nodes bypass the quota.  Not owned.
  void set_quota(health::TenantQuota* quota) { quota_ = quota; }

  // --- Fencing (mdwf::membership) -----------------------------------------
  // Incarnation fencing: a commit from a client whose node incarnation is
  // stale (the membership controller declared the node lost) is rejected
  // with StaleEpochError after the broker round trip instead of applied —
  // a healed zombie cannot corrupt the namespace.  Not owned; nullptr off.
  void set_fencing(FenceRegistry* fences) { fences_ = fences; }

  // --- Observability (mdwf::obs) ------------------------------------------
  // Samples broker queue depth ("kvs.pending": requests queued or in
  // service, including those parked behind a stall gate) and cumulative
  // commit/lookup totals onto `track` as they change.
  void set_trace(obs::TraceSink* sink, obs::TrackId track);

 private:
  friend class KvsClient;

  struct Entry {
    KvsValue value;
    TimePoint visible_at = TimePoint::origin();
  };

  // Queued service-time charge on the broker; `client` identifies the
  // requesting node for per-tenant quota accounting.
  sim::Task<void> serve(Duration service, net::NodeId client);
  void arm_watch_wakeup(const std::string& key, TimePoint when);
  void trace_pending(int delta);
  void trace_total(obs::CounterId id, std::uint64_t value);

  sim::Simulation* sim_;
  KvsParams params_;
  net::Network* network_;
  net::NodeId node_;
  std::unique_ptr<sim::Semaphore> slots_;
  std::map<std::string, Entry> store_;
  // One-shot events waiting for a key to become visible.
  std::map<std::string, std::vector<std::shared_ptr<sim::Event>>> watchers_;
  std::uint64_t commits_ = 0;
  std::uint64_t lookups_ = 0;
  int stall_depth_ = 0;
  std::shared_ptr<sim::Event> stall_gate_;
  std::vector<std::string> lost_keys_;
  std::vector<std::function<void(const std::vector<std::string>&)>>
      recovery_listeners_;
  std::uint64_t lost_commits_ = 0;
  double dilation_ = 1.0;
  std::uint32_t admission_limit_ = 0;
  health::TenantQuota* quota_ = nullptr;
  FenceRegistry* fences_ = nullptr;
  std::uint64_t sheds_ = 0;
  std::int64_t pending_ = 0;
  obs::TraceSink* trace_ = nullptr;
  obs::CounterId trace_pending_id_{};
  obs::CounterId trace_commits_id_{};
  obs::CounterId trace_lookups_id_{};
};

class KvsClient {
 public:
  KvsClient(sim::Simulation& sim, KvsServer& server, net::NodeId node);

  net::NodeId node() const { return node_; }

  // Publishes key=value; returns after the broker applied the commit (the
  // value becomes *visible* visibility_delay later).
  sim::Task<void> commit(std::string key, std::string value);

  // Visible value for key, or nullopt.
  sim::Task<std::optional<KvsValue>> lookup(const std::string& key);

  // Lookup, and if the key is not yet visible, watch until it is (waking at
  // visibility) and look up again.  `idle_out`, when non-null, receives the
  // time spent blocked in the watch (the synchronization-idle component).
  sim::Task<KvsValue> wait_for(const std::string& key,
                               Duration* idle_out = nullptr);

  // Blocks until `key` becomes visible (push notification; no lookup RPC).
  // Returns immediately if it already is.
  sim::Task<void> watch_until_visible(const std::string& key);

  // Bounded watch: like watch_until_visible but gives up after `timeout`.
  // Returns whether the key is visible (the building block of DYAD's
  // timeout-and-retry recovery path).
  sim::Task<bool> watch_for(const std::string& key, Duration timeout);

 private:
  sim::Task<void> rpc_to_server();
  sim::Task<void> rpc_from_server();

  sim::Simulation* sim_;
  KvsServer* server_;
  net::NodeId node_;
};

}  // namespace mdwf::kvs
