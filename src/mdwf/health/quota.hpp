// Weighted fair-share admission quotas for co-tenant workloads.
//
// A multi-tenant run places several workflow ensembles on one testbed; the
// node-local resources (NVMe, page cache, local FS) are isolated by disjoint
// placement, but the KVS broker, the Lustre MDS, and the OSTs are shared.
// `TenantQuota` maps compute nodes to tenants and bounds each tenant's
// in-flight requests on every shared service to its weighted share of the
// service's queue budget.  A tenant at its bound sheds — or backs off — its
// *own* requests (`health::ServerBusy`), so one tenant's overload can no
// longer grow the shared queue underneath everyone else.
//
// Pure bookkeeping: no simulation dependencies, deterministic, and zero-cost
// when no quota is attached (servers check a null pointer).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mdwf/net/network.hpp"

namespace mdwf::health {

// Which shared service a quota bounds.
enum class QuotaResource : std::uint8_t { kKvs = 0, kMds = 1, kOst = 2 };
inline constexpr std::size_t kQuotaResources = 3;
std::string_view to_string(QuotaResource r);

struct QuotaParams {
  bool enabled = false;
  // Total bounded queue depth (queued + in service) each service budgets
  // across tenants; a tenant's own bound is its weighted share, never below
  // one slot so every tenant can always make progress.
  std::uint32_t kvs_queue = 24;
  std::uint32_t mds_queue = 16;
  std::uint32_t ost_queue = 48;
};

class TenantQuota {
 public:
  // Nodes not covered by any map_nodes() range (servers, unmapped clients)
  // resolve to kUnmapped and are never quota-limited.
  static constexpr std::uint32_t kUnmapped = 0xffffffffu;

  explicit TenantQuota(QuotaParams params = {}) : params_(params) {}

  const QuotaParams& params() const { return params_; }

  // Registers a tenant; returns its index.  Weights are relative shares.
  std::uint32_t add_tenant(std::string name, double weight);
  // Declares nodes [first, first + count) as owned by `tenant`.
  void map_nodes(std::uint32_t first, std::uint32_t count,
                 std::uint32_t tenant);

  std::uint32_t tenant_of(net::NodeId node) const;
  std::size_t tenant_count() const { return tenants_.size(); }
  const std::string& tenant_name(std::uint32_t t) const;
  double weight(std::uint32_t t) const;
  // Effective fair-share weight: the configured weight scaled by the
  // fraction of the tenant's mapped nodes still alive.  Equal to weight()
  // until a node loss shrinks the slice.
  double effective_weight(std::uint32_t t) const;

  // Rebalance on a permanent node loss (membership declare): the lost node
  // stops contributing to its tenant's share, so the tenant's bounds shrink
  // proportionally and every survivor's grow.  Idempotent per node;
  // unmapped nodes (servers) are ignored.
  void on_node_lost(net::NodeId node);
  std::uint32_t nodes_lost(std::uint32_t t) const;

  // `tenant`'s bounded queue depth on `r`: its weighted share of the
  // resource's queue budget, floored at 1.
  std::uint32_t bound(QuotaResource r, std::uint32_t tenant) const;

  // True when admitting one more request from `node`'s tenant on `r` would
  // exceed the tenant's bound.  Unmapped nodes are never at bound.
  bool at_bound(QuotaResource r, net::NodeId node) const;
  // Unconditional in-flight bookkeeping; pair every admit with a release.
  void admit(QuotaResource r, net::NodeId node);
  void release(QuotaResource r, net::NodeId node);
  // Records one shed (or busy-bounce) charged to `node`'s tenant.
  void count_shed(QuotaResource r, net::NodeId node);

  // --- Accounting (conservation checks and per-tenant counters) -----------
  std::int64_t in_flight(QuotaResource r, std::uint32_t tenant) const;
  std::uint64_t admits(QuotaResource r, std::uint32_t tenant) const;
  std::uint64_t releases(QuotaResource r, std::uint32_t tenant) const;
  std::uint64_t sheds(QuotaResource r, std::uint32_t tenant) const;
  std::uint64_t sheds_total(std::uint32_t tenant) const;
  std::uint64_t admits_total(std::uint32_t tenant) const;

 private:
  struct PerTenant {
    std::string name;
    double weight = 1.0;
    std::uint32_t mapped_nodes = 0;
    std::uint32_t lost_nodes = 0;
    std::int64_t in_flight[kQuotaResources] = {};
    std::uint64_t admits[kQuotaResources] = {};
    std::uint64_t releases[kQuotaResources] = {};
    std::uint64_t sheds[kQuotaResources] = {};
  };

  std::uint32_t budget(QuotaResource r) const;

  QuotaParams params_;
  std::vector<PerTenant> tenants_;
  double total_weight_ = 0.0;
  std::vector<std::uint32_t> node_tenant_;  // indexed by node id
  std::vector<bool> node_lost_;             // parallel to node_tenant_
};

// RAII admit/release pairing usable inside coroutine frames; a null quota is
// a no-op, so servers construct it unconditionally.
class QuotaAdmission {
 public:
  QuotaAdmission(TenantQuota* quota, QuotaResource r, net::NodeId node)
      : quota_(quota), r_(r), node_(node) {
    if (quota_ != nullptr) quota_->admit(r_, node_);
  }
  QuotaAdmission(const QuotaAdmission&) = delete;
  QuotaAdmission& operator=(const QuotaAdmission&) = delete;
  ~QuotaAdmission() {
    if (quota_ != nullptr) quota_->release(r_, node_);
  }

 private:
  TenantQuota* quota_;
  QuotaResource r_;
  net::NodeId node_;
};

}  // namespace mdwf::health
