#include "mdwf/health/health.hpp"

#include <algorithm>
#include <cmath>

#include "mdwf/common/assert.hpp"

namespace mdwf::health {

// --- FailureDetector --------------------------------------------------------

void FailureDetector::observe(Duration latency) {
  const double x = static_cast<double>(latency.ns());
  if (count_ == 0) {
    mean_ns_ = x;
    var_ns2_ = 0.0;
  } else {
    // EWMA mean and variance (West 1979): recent behaviour dominates, so
    // the detector adapts when a server degrades or recovers.
    const double a = params_.ewma_alpha;
    const double diff = x - mean_ns_;
    mean_ns_ += a * diff;
    var_ns2_ = (1.0 - a) * (var_ns2_ + a * diff * diff);
  }
  ++count_;
}

double FailureDetector::phi(Duration x) const {
  const double floor_ns = static_cast<double>(params_.min_stddev.ns());
  const double std_ns = std::max(std::sqrt(std::max(var_ns2_, 0.0)), floor_ns);
  const double z =
      (static_cast<double>(x.ns()) - mean_ns_) / (std_ns * std::sqrt(2.0));
  // P(X >= x) for Normal(mean, std); erfc keeps precision in the far tail.
  // phi is capped at 40 ("one in 10^40"), which also keeps the
  // probability-underflow sentinel on the same scale as finite values so
  // phi stays monotone in x.
  const double p = 0.5 * std::erfc(z);
  if (p <= 0.0) return 40.0;  // beyond double precision: certainly suspect
  return std::min(-std::log10(p), 40.0);
}

bool FailureDetector::suspect(Duration x) const {
  // Absolute SLO bound first: it must fire even before warm-up, and even
  // when a constantly-gray server has dragged the learned mean up to the
  // sick level (where phi would report "normal").
  if (params_.suspect_ceiling.ns() > 0 && x >= params_.suspect_ceiling) {
    return true;
  }
  if (count_ < params_.min_samples) return false;
  if (x < params_.suspect_floor) return false;
  return phi(x) >= params_.phi_threshold;
}

// --- DeclarePolicy ----------------------------------------------------------

void DeclarePolicy::observe_heartbeat(TimePoint now) {
  if (heard_) detector_.observe(now - last_);
  heard_ = true;
  last_ = now;
  suspected_ = false;  // a live heartbeat resets the confirm window
}

bool DeclarePolicy::should_declare(TimePoint now) {
  if (!heard_) return false;
  const Duration silence = now - last_;
  if (silence >= params_.silence_ceiling) return true;
  if (!detector_.suspect(silence)) {
    suspected_ = false;
    return false;
  }
  if (!suspected_) {
    suspected_ = true;
    suspect_since_ = now;
  }
  return now - suspect_since_ >= params_.confirm_window;
}

// --- CircuitBreaker ---------------------------------------------------------

void CircuitBreaker::open(TimePoint now) {
  state_ = State::kOpen;
  opened_at_ = now;
  probe_inflight_ = false;
  probe_successes_ = 0;
  ++trips_;
}

bool CircuitBreaker::allow(TimePoint now) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now - opened_at_ < params_.open_for) return false;
      state_ = State::kHalfOpen;
      probe_inflight_ = true;
      return true;
    case State::kHalfOpen:
      if (probe_inflight_) return false;
      probe_inflight_ = true;
      return true;
  }
  return true;  // unreachable
}

void CircuitBreaker::record_success(TimePoint) {
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kHalfOpen:
      probe_inflight_ = false;
      if (++probe_successes_ >= params_.close_threshold) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
        probe_successes_ = 0;
      }
      break;
    case State::kOpen:
      // A straggler completing after the trip changes nothing.
      break;
  }
}

void CircuitBreaker::record_failure(TimePoint now) {
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= params_.failure_threshold) open(now);
      break;
    case State::kHalfOpen:
      // Failed probe: back to open, restart the cool-down.
      open(now);
      break;
    case State::kOpen:
      break;
  }
}

// --- LatencyTracker ---------------------------------------------------------

LatencyTracker::LatencyTracker(std::size_t capacity) : capacity_(capacity) {
  MDWF_ASSERT(capacity_ >= 1);
  ring_.resize(capacity_, 0);
}

void LatencyTracker::observe(Duration d) {
  ring_[next_] = d.ns();
  next_ = (next_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
}

Duration LatencyTracker::percentile(double q) const {
  MDWF_ASSERT(q >= 0.0 && q <= 1.0);
  if (size_ == 0) return Duration::zero();
  std::vector<std::int64_t> sorted(ring_.begin(),
                                   ring_.begin() + static_cast<long>(size_));
  std::sort(sorted.begin(), sorted.end());
  if (size_ == 1) return Duration::nanoseconds(sorted[0]);
  const double pos = q * static_cast<double>(size_ - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, size_ - 1);
  const double frac = pos - static_cast<double>(lo);
  const double v = static_cast<double>(sorted[lo]) +
                   frac * static_cast<double>(sorted[hi] - sorted[lo]);
  return Duration::nanoseconds(static_cast<std::int64_t>(v));
}

Duration LatencyTracker::hedge_delay(const HedgeParams& params) const {
  if (size_ < params.min_samples) return params.initial_delay;
  return std::min(std::max(percentile(params.percentile), params.min_delay),
                  params.max_delay);
}

// --- HealthParams -----------------------------------------------------------

HealthParams with_default_limits(HealthParams params) {
  if (!params.enabled) return params;
  if (params.kvs_admission_limit == 0) params.kvs_admission_limit = 64;
  if (params.mds_admission_limit == 0) params.mds_admission_limit = 64;
  if (params.ost_admission_limit == 0) params.ost_admission_limit = 128;
  return params;
}

}  // namespace mdwf::health
