// Gray-failure mitigation primitives (mdwf::health).
//
// Gray failures — fail-slow devices, lossy links, overloaded servers — do
// not trip the crash-oriented recovery machinery of mdwf::fault: every RPC
// still *succeeds*, just slowly.  This module supplies the client- and
// server-side machinery that turns "silently slow" into "detected and
// routed around":
//
//   * `FailureDetector` — a phi-accrual-style suspicion level computed from
//     an online latency distribution (EWMA mean/variance).  phi is the
//     negative log of the probability that a healthy server would exhibit
//     the observed latency, so thresholds compose: phi >= 8 means "one in
//     10^8 under the learned distribution".
//   * `CircuitBreaker` — the classic closed / open / half-open state
//     machine.  Consecutive suspected-or-failed RPCs trip it; while open,
//     callers fail over immediately instead of queueing behind a sick
//     server; after a cool-down a single half-open probe decides whether to
//     close it again.
//   * `LatencyTracker` — a bounded sample window with percentile lookup,
//     used to derive the adaptive hedging delay (launch a duplicate fetch
//     only once the primary has exceeded e.g. its own P99).
//   * `ServerBusy` — the retryable reply a bounded admission queue sheds
//     under backpressure.  It derives from net::NetError so every existing
//     recovery path (DYAD retry loop, Lustre flush guard, rank fault
//     retries) already treats it as a transient, retryable condition.
//
// All classes are pure state machines over (TimePoint, Duration): no
// simulation dependency, no hidden randomness, so identical call sequences
// give identical decisions — the determinism contract of the testbed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mdwf/common/time.hpp"
#include "mdwf/net/network.hpp"

namespace mdwf::health {

// Retryable busy reply from a bounded admission queue (server-side
// backpressure).  Derives from net::NetError so fault-aware callers retry
// it with their existing exponential backoff.
class ServerBusy : public net::NetError {
 public:
  explicit ServerBusy(const std::string& what) : net::NetError(what) {}
};

// --- Failure detection ------------------------------------------------------

struct DetectorParams {
  // EWMA weight of the newest sample in the latency mean/variance.
  double ewma_alpha = 0.1;
  // Variance floor: avoids a phi explosion when the learned distribution
  // is near-degenerate (all samples identical in virtual time).
  Duration min_stddev = Duration::microseconds(50);
  // Samples required before phi is considered meaningful.
  std::uint32_t min_samples = 8;
  // Suspicion threshold for `suspect()`.
  double phi_threshold = 6.0;
  // Latencies below this are never suspect regardless of phi (guards the
  // warm-up phase where the learned mean is tiny).
  Duration suspect_floor = Duration::milliseconds(2);
  // Latencies at or above this are always suspect, even before warm-up.
  // phi measures deviation from the *learned* baseline, so a server that is
  // gray from the very first RPC teaches the detector its sickness as
  // normal; the ceiling is the absolute SLO bound that catches that case.
  // 0 disables.  The default sits well above any healthy KVS round trip
  // (sub-millisecond) and below the paper's overload regimes (tens of ms).
  Duration suspect_ceiling = Duration::milliseconds(10);
};

// Phi-accrual failure detector over per-RPC latency samples.  `observe`
// feeds a completed RPC's latency; `phi(x)` is the suspicion level of an
// RPC that took (or has so far taken) `x`.
class FailureDetector {
 public:
  explicit FailureDetector(DetectorParams params = {}) : params_(params) {}

  void observe(Duration latency);

  // -log10 P(latency >= x) under Normal(mean, stddev) of observed samples.
  // Monotonically non-decreasing in x.
  double phi(Duration x) const;

  // True once warmed up and phi(x) >= phi_threshold and x >= suspect_floor.
  bool suspect(Duration x) const;

  std::uint32_t samples() const { return count_; }
  Duration mean() const {
    return Duration::nanoseconds(static_cast<std::int64_t>(mean_ns_));
  }

 private:
  DetectorParams params_;
  double mean_ns_ = 0.0;
  double var_ns2_ = 0.0;
  std::uint32_t count_ = 0;
};

// --- Declare-dead policy ----------------------------------------------------

struct DeclareParams {
  // Sustained suspicion required before a declare: the phi detector must
  // keep the node suspect for this long without an intervening heartbeat
  // resetting it.  Guards against one late heartbeat killing a node.
  Duration confirm_window = Duration::milliseconds(60);
  // Absolute ceiling: silence at or past this declares the node regardless
  // of what the detector learned (covers the pre-warm-up phase and a
  // detector taught sickness as normal).
  Duration silence_ceiling = Duration::milliseconds(250);
  // Detector over heartbeat inter-arrival gaps.  The floor sits at several
  // heartbeat periods (default period 10 ms) so jitter is never suspect;
  // the per-sample ceiling is disabled — silence_ceiling above is the
  // absolute bound for declares.
  DetectorParams detector{
      .min_stddev = Duration::microseconds(500),
      .suspect_floor = Duration::milliseconds(30),
      .suspect_ceiling = Duration::zero(),
  };
};

// Promotes the phi-accrual detector from a hedging hint into a declare-dead
// policy: the membership controller feeds it one node's heartbeat arrivals
// and polls `should_declare`.  A declare is terminal for the node — the
// caller fences the old incarnation and migrates its ranks; this class only
// decides *when*.  Pure state machine over (TimePoint), like the rest of
// mdwf::health.
class DeclarePolicy {
 public:
  explicit DeclarePolicy(DeclareParams params = {})
      : params_(params), detector_(params.detector) {}

  void observe_heartbeat(TimePoint now);

  // True once the node has been suspect for confirm_window, or silent for
  // silence_ceiling.  Never true before the first heartbeat: a node that
  // has not joined yet cannot be declared.
  bool should_declare(TimePoint now);

  bool heard() const { return heard_; }
  TimePoint last_heartbeat() const { return last_; }

 private:
  DeclareParams params_;
  FailureDetector detector_;
  TimePoint last_ = TimePoint::origin();
  bool heard_ = false;
  bool suspected_ = false;
  TimePoint suspect_since_ = TimePoint::origin();
};

// --- Circuit breaking -------------------------------------------------------

struct BreakerParams {
  // Consecutive failures (or suspected-slow successes) that trip the
  // breaker open.
  std::uint32_t failure_threshold = 3;
  // Cool-down before an open breaker admits a half-open probe.
  Duration open_for = Duration::seconds_i(2);
  // Probe successes required to close again from half-open.
  std::uint32_t close_threshold = 1;
};

// Closed / open / half-open circuit breaker.  Pure state machine: callers
// pass the current virtual time to every transition.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(BreakerParams params = {}) : params_(params) {}

  // Whether a request may proceed now.  Closed always admits; open admits
  // nothing until the cool-down expires, then transitions to half-open and
  // admits a single in-flight probe; half-open admits one probe at a time.
  bool allow(TimePoint now);

  void record_success(TimePoint now);
  void record_failure(TimePoint now);

  State state() const { return state_; }
  // Transitions into kOpen (both initial trips and failed half-open probes).
  std::uint64_t trips() const { return trips_; }
  std::uint32_t consecutive_failures() const { return consecutive_failures_; }

 private:
  void open(TimePoint now);

  BreakerParams params_;
  State state_ = State::kClosed;
  std::uint32_t consecutive_failures_ = 0;
  std::uint32_t probe_successes_ = 0;
  bool probe_inflight_ = false;
  TimePoint opened_at_ = TimePoint::origin();
  std::uint64_t trips_ = 0;
};

// --- Hedging ----------------------------------------------------------------

struct HedgeParams {
  bool enabled = false;
  // Launch the duplicate fetch once the primary exceeds this percentile of
  // recently observed fetch latencies.
  double percentile = 0.95;
  // Samples required before the adaptive delay is trusted; below this the
  // (conservative) initial_delay applies.
  std::uint32_t min_samples = 8;
  Duration initial_delay = Duration::milliseconds(10);
  // Lower bound on the adaptive delay so healthy jitter does not spawn
  // hedges on every fetch.
  Duration min_delay = Duration::milliseconds(1);
  // Upper bound on the adaptive delay.  The tracker window records whole
  // cold-fetch wall times, which in a closed-loop workflow include waits
  // for frames that were not produced yet; a few such waits would push the
  // P95 to seconds and effectively disable hedging right when a gray
  // server makes every fetch slow.
  Duration max_delay = Duration::milliseconds(50);
  // Pacing of the hedge's replica-availability probes (cheap metadata-only
  // exists() calls).  Much finer than the client retry timeout: a launched
  // hedge is already the losing-time path, so quantizing its wait for the
  // producer's write-through at 40 ms would hand the tail right back.
  Duration availability_poll = Duration::milliseconds(2);
};

// Bounded window of latency samples with percentile lookup; feeds the
// adaptive hedge delay.
class LatencyTracker {
 public:
  explicit LatencyTracker(std::size_t capacity = 128);

  void observe(Duration d);
  std::size_t samples() const { return size_; }

  // Linear-interpolated quantile over the retained window (q in [0,1]).
  Duration percentile(double q) const;

  // The hedge launch delay under `params`: percentile-based once warmed
  // up, initial_delay before, never below min_delay.
  Duration hedge_delay(const HedgeParams& params) const;

 private:
  std::vector<std::int64_t> ring_;  // nanoseconds
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::size_t size_ = 0;
};

// --- Aggregate configuration ------------------------------------------------

struct HealthParams {
  // Master switch: detector + breaker on the DYAD KVS path and server-side
  // admission limits.
  bool enabled = false;
  DetectorParams detector{};
  BreakerParams breaker{};
  HedgeParams hedge{};
  // Server-side bounded admission queues (queued + in-service requests
  // beyond the limit are shed with ServerBusy; 0 = unbounded, i.e. off).
  std::uint32_t kvs_admission_limit = 0;
  std::uint32_t mds_admission_limit = 0;
  std::uint32_t ost_admission_limit = 0;
  // Client-side busy-retry loop (exponential backoff, doubling).
  std::uint32_t busy_retry_limit = 24;
  Duration busy_retry_base = Duration::microseconds(200);
};

// Default admission limits applied when health is enabled but no explicit
// limits were configured.  Sized well above healthy steady-state queue
// depths (service concurrency is 4-8) so they only engage under overload.
HealthParams with_default_limits(HealthParams params);

}  // namespace mdwf::health
