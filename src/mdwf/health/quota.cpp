#include "mdwf/health/quota.hpp"

#include <algorithm>
#include <cmath>

#include "mdwf/common/assert.hpp"

namespace mdwf::health {

std::string_view to_string(QuotaResource r) {
  switch (r) {
    case QuotaResource::kKvs:
      return "kvs";
    case QuotaResource::kMds:
      return "mds";
    case QuotaResource::kOst:
      return "ost";
  }
  return "?";
}

std::uint32_t TenantQuota::add_tenant(std::string name, double weight) {
  MDWF_ASSERT_MSG(weight > 0.0, "tenant weight must be positive");
  PerTenant t;
  t.name = std::move(name);
  t.weight = weight;
  tenants_.push_back(std::move(t));
  total_weight_ += weight;
  return static_cast<std::uint32_t>(tenants_.size() - 1);
}

void TenantQuota::map_nodes(std::uint32_t first, std::uint32_t count,
                            std::uint32_t tenant) {
  MDWF_ASSERT(tenant < tenants_.size());
  if (node_tenant_.size() < first + count) {
    node_tenant_.resize(first + count, kUnmapped);
    node_lost_.resize(first + count, false);
  }
  for (std::uint32_t n = first; n < first + count; ++n) {
    // Disjoint placement is the node-local isolation guarantee; overlapping
    // ranges would silently merge two tenants' NVMe/page-cache accounting.
    MDWF_ASSERT_MSG(node_tenant_[n] == kUnmapped,
                    "node already mapped to a tenant");
    node_tenant_[n] = tenant;
  }
  tenants_[tenant].mapped_nodes += count;
}

std::uint32_t TenantQuota::tenant_of(net::NodeId node) const {
  if (node.value >= node_tenant_.size()) return kUnmapped;
  return node_tenant_[node.value];
}

const std::string& TenantQuota::tenant_name(std::uint32_t t) const {
  MDWF_ASSERT(t < tenants_.size());
  return tenants_[t].name;
}

double TenantQuota::weight(std::uint32_t t) const {
  MDWF_ASSERT(t < tenants_.size());
  return tenants_[t].weight;
}

double TenantQuota::effective_weight(std::uint32_t t) const {
  MDWF_ASSERT(t < tenants_.size());
  const PerTenant& pt = tenants_[t];
  if (pt.mapped_nodes == 0) return pt.weight;
  return pt.weight *
         static_cast<double>(pt.mapped_nodes - pt.lost_nodes) /
         static_cast<double>(pt.mapped_nodes);
}

void TenantQuota::on_node_lost(net::NodeId node) {
  const std::uint32_t t = tenant_of(node);
  if (t == kUnmapped) return;
  if (node_lost_[node.value]) return;  // a declare is terminal; count once
  node_lost_[node.value] = true;
  ++tenants_[t].lost_nodes;
}

std::uint32_t TenantQuota::nodes_lost(std::uint32_t t) const {
  MDWF_ASSERT(t < tenants_.size());
  return tenants_[t].lost_nodes;
}

std::uint32_t TenantQuota::budget(QuotaResource r) const {
  switch (r) {
    case QuotaResource::kKvs:
      return params_.kvs_queue;
    case QuotaResource::kMds:
      return params_.mds_queue;
    case QuotaResource::kOst:
      return params_.ost_queue;
  }
  return 0;
}

std::uint32_t TenantQuota::bound(QuotaResource r, std::uint32_t tenant) const {
  MDWF_ASSERT(tenant < tenants_.size());
  // Shares are over *effective* weights, so a tenant that lost nodes claims
  // proportionally less and the survivors' bounds grow to fill the budget.
  double total = 0.0;
  for (std::uint32_t t = 0; t < tenants_.size(); ++t) {
    total += effective_weight(t);
  }
  if (total <= 0.0) return 1;
  const double share =
      static_cast<double>(budget(r)) * effective_weight(tenant) / total;
  return std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::llround(share)));
}

bool TenantQuota::at_bound(QuotaResource r, net::NodeId node) const {
  const std::uint32_t t = tenant_of(node);
  if (t == kUnmapped) return false;
  const auto idx = static_cast<std::size_t>(r);
  return tenants_[t].in_flight[idx] >=
         static_cast<std::int64_t>(bound(r, t));
}

void TenantQuota::admit(QuotaResource r, net::NodeId node) {
  const std::uint32_t t = tenant_of(node);
  if (t == kUnmapped) return;
  const auto idx = static_cast<std::size_t>(r);
  ++tenants_[t].in_flight[idx];
  ++tenants_[t].admits[idx];
}

void TenantQuota::release(QuotaResource r, net::NodeId node) {
  const std::uint32_t t = tenant_of(node);
  if (t == kUnmapped) return;
  const auto idx = static_cast<std::size_t>(r);
  MDWF_ASSERT_MSG(tenants_[t].in_flight[idx] > 0,
                  "quota release without admit");
  --tenants_[t].in_flight[idx];
  ++tenants_[t].releases[idx];
}

void TenantQuota::count_shed(QuotaResource r, net::NodeId node) {
  const std::uint32_t t = tenant_of(node);
  if (t == kUnmapped) return;
  ++tenants_[t].sheds[static_cast<std::size_t>(r)];
}

std::int64_t TenantQuota::in_flight(QuotaResource r,
                                    std::uint32_t tenant) const {
  MDWF_ASSERT(tenant < tenants_.size());
  return tenants_[tenant].in_flight[static_cast<std::size_t>(r)];
}

std::uint64_t TenantQuota::admits(QuotaResource r,
                                  std::uint32_t tenant) const {
  MDWF_ASSERT(tenant < tenants_.size());
  return tenants_[tenant].admits[static_cast<std::size_t>(r)];
}

std::uint64_t TenantQuota::releases(QuotaResource r,
                                    std::uint32_t tenant) const {
  MDWF_ASSERT(tenant < tenants_.size());
  return tenants_[tenant].releases[static_cast<std::size_t>(r)];
}

std::uint64_t TenantQuota::sheds(QuotaResource r, std::uint32_t tenant) const {
  MDWF_ASSERT(tenant < tenants_.size());
  return tenants_[tenant].sheds[static_cast<std::size_t>(r)];
}

std::uint64_t TenantQuota::sheds_total(std::uint32_t tenant) const {
  std::uint64_t total = 0;
  for (std::size_t r = 0; r < kQuotaResources; ++r) {
    total += tenants_[tenant].sheds[r];
  }
  return total;
}

std::uint64_t TenantQuota::admits_total(std::uint32_t tenant) const {
  std::uint64_t total = 0;
  for (std::size_t r = 0; r < kQuotaResources; ++r) {
    total += tenants_[tenant].admits[r];
  }
  return total;
}

}  // namespace mdwf::health
