// Membership / controller plane (mdwf::membership).
//
// Every recovery path in mdwf::fault assumes a failed node eventually
// returns: `CrashMonitor::wait_up` parks ranks until the node is back, so a
// *permanent* node loss ends in the deadlock reporter.  This module adds the
// piece a production service needs to survive losing a node outright:
//
//   1. Heartbeats.  Each compute node sends a periodic control message to
//      the controller (the service node).  The controller feeds each node's
//      inter-arrival gaps to a `health::DeclarePolicy` (phi-accrual
//      suspicion sustained past a confirm window, or silence past an
//      absolute ceiling).
//   2. Declare.  When the policy fires, the controller declares the node
//      lost: terminal for that incarnation.  The declare bumps the node's
//      incarnation in the shared `FenceRegistry` (fencing every daemon born
//      under the old one) and notifies listeners (stream route invalidation,
//      tenant quota rebalance).
//   3. Migration.  Ranks homed on a declared node re-home to the surviving
//      node with the fewest resident ranks (spare capacity; never onto
//      another declared node — the failure-domain rule), restart from their
//      checkpoint, and re-execute only the lost tail.
//   4. Fencing the past.  A declared node cut off by an *asymmetric*
//      partition keeps running — a zombie.  Its outbound publishes fail
//      during the partition; after the heal, the first server round trip
//      observes the bumped incarnation and rejects with StaleEpochError
//      (counted in `FenceRegistry::stale_rejects`).  A zombie heartbeat
//      re-joining is rejected the same way and the node's processes are
//      killed (the STONITH analogue), which bumps the crash epoch the rank
//      loops already watch.
//
// Everything runs inside the DES kernel: heartbeat arrivals, declares and
// migrations are ordinary simulation events, so a given (seed, scenario)
// pair yields bit-identical runs at any host thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mdwf/common/fence.hpp"
#include "mdwf/common/time.hpp"
#include "mdwf/health/health.hpp"
#include "mdwf/net/network.hpp"
#include "mdwf/sim/simulation.hpp"
#include "mdwf/sim/task.hpp"

namespace mdwf::fault {
class CrashMonitor;
}

namespace mdwf::membership {

struct MembershipParams {
  bool enabled = false;
  // Per-node heartbeat period (control message to the controller).
  Duration heartbeat_interval = Duration::milliseconds(10);
  // Controller scan period for the declare policies and the poll period of
  // ranks parked waiting for recovery-or-migration.
  Duration check_interval = Duration::milliseconds(10);
  health::DeclareParams declare{};
};

class MembershipPlane {
 public:
  // `monitor` may be null (no fault plan): heartbeats still flow but no
  // node can go down, so nothing ever declares.  `fences` outlives the
  // plane (the testbed owns both).
  MembershipPlane(sim::Simulation& sim, const MembershipParams& params,
                  net::Network& network, net::NodeId controller,
                  std::uint32_t compute_nodes, fault::CrashMonitor* monitor,
                  FenceRegistry& fences);

  // --- Rank lifecycle -------------------------------------------------------
  // Registers a rank homed on `node`; the first registration spawns the
  // heartbeat and scan loops (a plane with no ranks stays silent, so runs
  // without workflow ranks cannot hang on an undying heartbeat).
  std::uint32_t register_rank(std::uint32_t node);
  std::uint32_t home(std::uint32_t rank) const { return home_[rank]; }
  // Pins two ranks to migrate together (an XFS pair shares one node-local
  // filesystem, so splitting it across nodes would orphan the data):
  // whichever rank migrates first picks the target, the other follows.
  void bind_colocated(std::uint32_t a, std::uint32_t b);
  // Marks one registered rank finished; when all are, the plane's loops
  // drain so the simulation can reach quiescence.
  void rank_done();

  // Parks until the rank's home node is either powered on again (plain
  // crash recovery: returns the unchanged home) or declared lost (returns
  // the new home chosen by the placement rule and counts a migration).
  sim::Task<std::uint32_t> wait_recover_or_migrate(std::uint32_t rank);

  // --- Controller state -----------------------------------------------------
  bool lost(std::uint32_t node) const {
    return node < lost_.size() && lost_[node];
  }
  // Called on every declare with the lost node id, in registration order.
  void add_declare_listener(std::function<void(std::uint32_t)> listener);

  const MembershipParams& params() const { return params_; }
  std::uint64_t declares() const { return declares_; }
  std::uint64_t migrations() const { return migrations_; }
  // Sum over declares of (declare instant - last heartbeat heard): the
  // detection latency the membership_sweep frontier plots.
  Duration declare_latency() const { return declare_latency_; }

 private:
  sim::Task<void> heartbeat_loop(std::uint32_t node);
  sim::Task<void> scan_loop();
  void declare_lost(std::uint32_t node);
  std::uint32_t pick_target(std::uint32_t lost_node) const;
  void start();
  bool stopped() const { return registered_ > 0 && done_ >= registered_; }

  sim::Simulation* sim_;
  MembershipParams params_;
  net::Network* network_;
  net::NodeId controller_;
  fault::CrashMonitor* monitor_;
  FenceRegistry* fences_;

  std::vector<health::DeclarePolicy> policies_;  // one per compute node
  std::vector<bool> lost_;
  std::vector<bool> killed_;  // zombie processes killed after re-join
  std::vector<std::uint32_t> home_;
  std::vector<std::uint32_t> buddy_;  // kNoBuddy = migrates alone
  std::vector<std::function<void(std::uint32_t)>> listeners_;
  static constexpr std::uint32_t kNoBuddy = ~std::uint32_t{0};
  std::uint32_t registered_ = 0;
  std::uint32_t done_ = 0;
  bool started_ = false;
  std::uint64_t declares_ = 0;
  std::uint64_t migrations_ = 0;
  Duration declare_latency_ = Duration::zero();
};

}  // namespace mdwf::membership
