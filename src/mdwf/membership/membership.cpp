#include "mdwf/membership/membership.hpp"

#include <string>

#include "mdwf/common/assert.hpp"
#include "mdwf/fault/injector.hpp"

namespace mdwf::membership {

MembershipPlane::MembershipPlane(sim::Simulation& sim,
                                 const MembershipParams& params,
                                 net::Network& network, net::NodeId controller,
                                 std::uint32_t compute_nodes,
                                 fault::CrashMonitor* monitor,
                                 FenceRegistry& fences)
    : sim_(&sim),
      params_(params),
      network_(&network),
      controller_(controller),
      monitor_(monitor),
      fences_(&fences) {
  policies_.assign(compute_nodes, health::DeclarePolicy(params.declare));
  lost_.assign(compute_nodes, false);
  killed_.assign(compute_nodes, false);
  fences_->ensure(compute_nodes == 0 ? 0 : compute_nodes - 1);
}

std::uint32_t MembershipPlane::register_rank(std::uint32_t node) {
  MDWF_ASSERT(node < lost_.size());
  start();
  home_.push_back(node);
  buddy_.push_back(kNoBuddy);
  ++registered_;
  return static_cast<std::uint32_t>(home_.size() - 1);
}

void MembershipPlane::bind_colocated(std::uint32_t a, std::uint32_t b) {
  MDWF_ASSERT(a < buddy_.size() && b < buddy_.size());
  buddy_[a] = b;
  buddy_[b] = a;
}

void MembershipPlane::rank_done() { ++done_; }

void MembershipPlane::add_declare_listener(
    std::function<void(std::uint32_t)> listener) {
  listeners_.push_back(std::move(listener));
}

void MembershipPlane::start() {
  if (started_) return;
  started_ = true;
  for (std::uint32_t n = 0; n < lost_.size(); ++n) {
    sim_->spawn(heartbeat_loop(n), "membership.hb" + std::to_string(n));
  }
  sim_->spawn(scan_loop(), "membership.scan");
}

sim::Task<void> MembershipPlane::heartbeat_loop(std::uint32_t node) {
  for (;;) {
    co_await sim_->delay(params_.heartbeat_interval);
    if (stopped()) co_return;
    if (monitor_ != nullptr && monitor_->down(node)) {
      // Powered off.  If also declared, this incarnation can never beat
      // again (permanent loss keeps the node down); stop listening.
      if (lost_[node]) co_return;
      continue;
    }
    try {
      co_await network_->send_control(net::NodeId{node}, controller_);
    } catch (const net::NetError&) {
      continue;  // beat lost in the fabric (partition / isolation)
    }
    if (stopped()) co_return;
    if (lost_[node]) {
      // A zombie re-joining after its declare: the heartbeat presents the
      // old incarnation, which is fenced, and the controller answers by
      // killing the stale processes (STONITH) — the crash-epoch bump sends
      // the node's rank loops into recovery, where they migrate.
      fences_->count_reject();
      if (monitor_ != nullptr && !killed_[node]) {
        killed_[node] = true;
        monitor_->begin_crash(node, /*power_loss=*/false);
        monitor_->end_crash(node);
      }
      co_return;
    }
    policies_[node].observe_heartbeat(sim_->now());
  }
}

sim::Task<void> MembershipPlane::scan_loop() {
  for (;;) {
    co_await sim_->delay(params_.check_interval);
    if (stopped()) co_return;
    for (std::uint32_t n = 0; n < lost_.size(); ++n) {
      if (!lost_[n] && policies_[n].should_declare(sim_->now())) {
        declare_lost(n);
      }
    }
    // Nothing left to declare: with every node lost the scan must stop
    // ticking or the degenerate run could never quiesce into the deadlock
    // reporter.
    bool any_alive = false;
    for (std::uint32_t n = 0; n < lost_.size(); ++n) {
      any_alive = any_alive || !lost_[n];
    }
    if (!any_alive) co_return;
  }
}

void MembershipPlane::declare_lost(std::uint32_t node) {
  lost_[node] = true;
  ++declares_;
  declare_latency_ += sim_->now() - policies_[node].last_heartbeat();
  fences_->fence(node);
  for (const auto& listener : listeners_) listener(node);
}

std::uint32_t MembershipPlane::pick_target(std::uint32_t lost_node) const {
  // Spare capacity / failure domain: the surviving node currently homing
  // the fewest ranks, lowest id on ties, never a declared node.
  std::vector<std::uint32_t> resident(lost_.size(), 0);
  for (const std::uint32_t h : home_) {
    if (h < resident.size()) ++resident[h];
  }
  std::uint32_t best = lost_node;
  std::uint32_t best_count = 0;
  bool found = false;
  for (std::uint32_t n = 0; n < lost_.size(); ++n) {
    if (lost_[n]) continue;
    if (!found || resident[n] < best_count) {
      found = true;
      best = n;
      best_count = resident[n];
    }
  }
  // No survivor: degenerate (every node lost); the caller keeps its home
  // and the run ends in the deadlock reporter, which is the right report.
  return best;
}

sim::Task<std::uint32_t> MembershipPlane::wait_recover_or_migrate(
    std::uint32_t rank) {
  for (;;) {
    const std::uint32_t h = home_[rank];
    if (lost_[h]) {
      std::uint32_t target;
      const std::uint32_t buddy = buddy_[rank];
      if (buddy != kNoBuddy && home_[buddy] != h && !lost_[home_[buddy]]) {
        target = home_[buddy];  // colocated pair: follow the first mover
      } else {
        target = pick_target(h);
      }
      if (target == h) {
        // Every node is declared lost: nothing to migrate to.  Park for
        // good so the run quiesces into the deadlock reporter — the right
        // report for a cluster with no survivors.
        sim::Event never(*sim_);
        co_await never.wait();
      }
      home_[rank] = target;
      ++migrations_;
      co_return target;
    }
    if (monitor_ == nullptr || !monitor_->down(h)) co_return h;
    co_await sim_->delay(params_.check_interval);
  }
}

}  // namespace mdwf::membership
