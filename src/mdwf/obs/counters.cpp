#include "mdwf/obs/counters.hpp"

namespace mdwf::obs {

std::uint64_t& CounterMap::slot(std::string_view name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return items_[it->second].second;
  items_.emplace_back(std::string(name), 0);
  index_.emplace(std::string(name), items_.size() - 1);
  return items_.back().second;
}

void CounterMap::add(std::string_view name, std::uint64_t delta) {
  slot(name) += delta;
}

void CounterMap::set(std::string_view name, std::uint64_t value) {
  slot(name) = value;
}

std::uint64_t CounterMap::get(std::string_view name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? 0 : items_[it->second].second;
}

bool CounterMap::contains(std::string_view name) const {
  return index_.find(name) != index_.end();
}

void CounterMap::merge(const CounterMap& other) {
  for (const auto& [name, value] : other.items_) add(name, value);
}

std::string CounterMap::to_csv() const {
  std::string out = "counter,value\n";
  for (const auto& [name, value] : items_) {
    out += name;
    out += ',';
    out += std::to_string(value);
    out += '\n';
  }
  return out;
}

}  // namespace mdwf::obs
