#include "mdwf/obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <tuple>

#include "mdwf/common/assert.hpp"

namespace mdwf::obs {
namespace {

// Forward decimal rendering into a caller buffer; returns one past the last
// digit.  The materializers format millions of integers, so this avoids the
// std::to_string temporary (and snprintf's locale machinery) per field.
char* write_u64(char* p, std::uint64_t v) {
  char tmp[20];
  int n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n != 0) *p++ = tmp[--n];
  return p;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[20];
  out.append(buf, static_cast<std::size_t>(write_u64(buf, v) - buf));
}

void append_i64(std::string& out, std::int64_t v) {
  if (v < 0) {
    out += '-';
    append_u64(out, static_cast<std::uint64_t>(-(v + 1)) + 1u);
  } else {
    append_u64(out, static_cast<std::uint64_t>(v));
  }
}

// Integer nanoseconds rendered as microseconds with exactly three decimals:
// deterministic (no floating point) and lossless.
void append_us(std::string& out, std::int64_t ns) {
  MDWF_ASSERT(ns >= 0);
  char buf[26];
  char* p = write_u64(buf, static_cast<std::uint64_t>(ns) / 1000u);
  const auto frac = static_cast<std::uint32_t>(ns % 1000);
  *p++ = '.';
  *p++ = static_cast<char>('0' + frac / 100);
  *p++ = static_cast<char>('0' + (frac / 10) % 10);
  *p++ = static_cast<char>('0' + frac % 10);
  out.append(buf, static_cast<std::size_t>(p - buf));
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

TraceSink::TraceSink() = default;

std::uint32_t TraceSink::intern(std::string_view s) {
  const auto it = name_index_.find(s);
  if (it != name_index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(s);
  name_index_.emplace(std::string(s), id);
  return id;
}

TrackId TraceSink::track(std::string_view process, std::string_view thread) {
  std::uint32_t pid;
  const auto pit = process_index_.find(process);
  if (pit != process_index_.end()) {
    pid = pit->second;
  } else {
    pid = static_cast<std::uint32_t>(processes_.size());
    processes_.push_back(Process{std::string(process), {}, {}});
    process_index_.emplace(std::string(process), pid);
  }
  Process& proc = processes_[pid];
  std::uint32_t tid;
  const auto tit = proc.thread_index.find(thread);
  if (tit != proc.thread_index.end()) {
    tid = tit->second;
  } else {
    tid = static_cast<std::uint32_t>(proc.threads.size());
    proc.threads.emplace_back(thread);
    proc.thread_index.emplace(std::string(thread), tid);
  }
  return TrackId{pid, tid};
}

std::uint32_t TraceSink::intern_handle(const Handle& h) {
  const auto key = std::make_tuple(static_cast<std::uint8_t>(h.kind),
                                   h.track.pid, h.track.tid, h.name, h.cat);
  const auto it = handle_index_.find(key);
  if (it != handle_index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(handles_.size());
  handles_.push_back(h);
  handle_index_.emplace(key, id);
  return id;
}

SpanId TraceSink::span_id(TrackId t, std::string_view name,
                          std::string_view category) {
  return SpanId{
      intern_handle(Handle{Kind::kSpan, t, intern(name), intern(category)})};
}

CounterId TraceSink::counter_id(TrackId t, std::string_view name) {
  const std::uint32_t name_id = intern(name);
  const auto key = std::make_pair(t.pid, name_id);
  const auto it = counter_key_index_.find(key);
  if (it != counter_key_index_.end()) {
    const Handle& prior = handles_[it->second];
    if (prior.track.tid != t.tid) {
      throw std::logic_error(
          "obs: counter '" + std::string(name) + "' already registered on " +
          processes_[t.pid].name + "/" +
          processes_[t.pid].threads[prior.track.tid] +
          "; Chrome keys counter series by pid+name, so a second lane in the "
          "same process would interleave samples");
    }
    return CounterId{it->second};
  }
  const std::uint32_t id =
      intern_handle(Handle{Kind::kCounter, t, name_id, 0});
  counter_key_index_.emplace(key, id);
  return CounterId{id};
}

InstantId TraceSink::instant_id(TrackId t, std::string_view name) {
  return InstantId{intern_handle(Handle{Kind::kInstant, t, intern(name), 0})};
}

InstantId TraceSink::instant_series(TrackId t, std::string_view prefix) {
  return InstantId{
      intern_handle(Handle{Kind::kInstantSeries, t, intern(prefix), 0})};
}

std::size_t TraceSink::interned_tracks() const {
  std::size_t n = 0;
  for (const Process& p : processes_) n += p.threads.size();
  return n;
}

void TraceSink::grow() {
  chunks_.push_back(std::make_unique<Chunk>());
  head_ = chunks_.back()->recs;
  head_used_ = 0;
}

std::vector<std::uint32_t> TraceSink::sorted_order() const {
  std::vector<std::uint32_t> order(records_);
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  // Stable: events at the same instant keep emission order (FIFO, like the
  // simulator's own event queue).  Counters and instants are appended in
  // clock order already; only spans (whose record carries the *start* time,
  // emitted at close) land out of order, so the log is nearly sorted and
  // the merge passes are cheap.
  std::stable_sort(order.begin(), order.end(),
                   [this](std::uint32_t a, std::uint32_t b) {
                     return record(a).ts_ns < record(b).ts_ns;
                   });
  return order;
}

std::string TraceSink::chrome_json() const {
  std::string out;
  out.reserve(128 + records_ * 96);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Metadata: name and sort order for every registered lane.
  for (std::uint32_t pid = 0; pid < processes_.size(); ++pid) {
    const Process& proc = processes_[pid];
    sep();
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
    append_u64(out, pid);
    out += ",\"tid\":0,\"args\":{\"name\":";
    append_json_string(out, proc.name);
    out += "}}";
    sep();
    out += "{\"ph\":\"M\",\"name\":\"process_sort_index\",\"pid\":";
    append_u64(out, pid);
    out += ",\"tid\":0,\"args\":{\"sort_index\":";
    append_u64(out, pid);
    out += "}}";
    for (std::uint32_t tid = 0; tid < proc.threads.size(); ++tid) {
      sep();
      out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":";
      append_u64(out, pid);
      out += ",\"tid\":";
      append_u64(out, tid);
      out += ",\"args\":{\"name\":";
      append_json_string(out, proc.threads[tid]);
      out += "}}";
      sep();
      out += "{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":";
      append_u64(out, pid);
      out += ",\"tid\":";
      append_u64(out, tid);
      out += ",\"args\":{\"sort_index\":";
      append_u64(out, tid);
      out += "}}";
    }
  }

  // Per-handle constant fragments, computed once: each record then costs two
  // or three memcpys plus the integer fields.  `pre` runs through `"ts":`
  // (for instant series: through the escaped name prefix, with `mid` closing
  // the name and running through `"ts":`).
  struct Frag {
    std::string pre;
    std::string mid;
  };
  std::vector<Frag> frags(handles_.size());
  for (std::size_t h = 0; h < handles_.size(); ++h) {
    const Handle& hd = handles_[h];
    Frag& f = frags[h];
    auto pid_tid_ts = [&](std::string& s) {
      s += ",\"pid\":";
      append_u64(s, hd.track.pid);
      s += ",\"tid\":";
      append_u64(s, hd.track.tid);
      s += ",\"ts\":";
    };
    switch (hd.kind) {
      case Kind::kSpan:
        f.pre = "{\"ph\":\"X\",\"name\":";
        append_json_string(f.pre, names_[hd.name]);
        f.pre += ",\"cat\":";
        append_json_string(f.pre, names_[hd.cat]);
        pid_tid_ts(f.pre);
        break;
      case Kind::kInstant:
        f.pre = "{\"ph\":\"i\",\"name\":";
        append_json_string(f.pre, names_[hd.name]);
        pid_tid_ts(f.pre);
        break;
      case Kind::kInstantSeries: {
        // Name = escaped prefix + decimal payload; digits never need
        // escaping, so the quote closes in `mid`.
        std::string esc;
        append_json_string(esc, names_[hd.name]);
        esc.pop_back();  // drop the closing quote; payload digits follow
        f.pre = "{\"ph\":\"i\",\"name\":" + esc;
        f.mid = "\"";
        pid_tid_ts(f.mid);
        break;
      }
      case Kind::kCounter:
        f.pre = "{\"ph\":\"C\",\"name\":";
        append_json_string(f.pre, names_[hd.name]);
        pid_tid_ts(f.pre);
        break;
    }
  }

  for (const std::uint32_t i : sorted_order()) {
    const Record& r = record(i);
    const Handle& h = handles_[r.handle];
    const Frag& f = frags[r.handle];
    sep();
    switch (h.kind) {
      case Kind::kSpan:
        out += f.pre;
        append_us(out, r.ts_ns);
        out += ",\"dur\":";
        append_us(out, r.payload);
        out += "}";
        break;
      case Kind::kInstant:
        out += f.pre;
        append_us(out, r.ts_ns);
        out += ",\"s\":\"t\"}";
        break;
      case Kind::kInstantSeries:
        out += f.pre;
        append_i64(out, r.payload);
        out += f.mid;
        append_us(out, r.ts_ns);
        out += ",\"s\":\"t\"}";
        break;
      case Kind::kCounter:
        out += f.pre;
        append_us(out, r.ts_ns);
        out += ",\"args\":{\"value\":";
        append_i64(out, r.payload);
        out += "}}";
        break;
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string TraceSink::metrics_csv() const {
  // Interned-table stats ride along as a strippable comment: consumers that
  // byte-compare across implementations filter '#' lines first.
  std::string out = "# interned names=";
  append_u64(out, names_.size());
  out += " tracks=";
  append_u64(out, interned_tracks());
  out += " handles=";
  append_u64(out, handles_.size());
  out += " records=";
  append_u64(out, records_);
  out += "\nts_us,process,track,counter,value\n";

  // Per-counter-handle constant middle: ",process,track,name,".
  std::vector<std::string> mids(handles_.size());
  for (std::size_t h = 0; h < handles_.size(); ++h) {
    const Handle& hd = handles_[h];
    if (hd.kind != Kind::kCounter) continue;
    std::string& m = mids[h];
    m += ',';
    m += processes_[hd.track.pid].name;
    m += ',';
    m += processes_[hd.track.pid].threads[hd.track.tid];
    m += ',';
    m += names_[hd.name];
    m += ',';
  }

  for (const std::uint32_t i : sorted_order()) {
    const Record& r = record(i);
    const Handle& h = handles_[r.handle];
    if (h.kind != Kind::kCounter) continue;
    append_us(out, r.ts_ns);
    out += mids[r.handle];
    append_i64(out, r.payload);
    out += '\n';
  }
  return out;
}

std::string TraceSink::metrics_csv_path(const std::string& json_path) {
  return json_path + ".metrics.csv";
}

void TraceSink::write(const std::string& json_path) const {
  std::ofstream json(json_path, std::ios::binary | std::ios::trunc);
  if (!json) {
    throw std::runtime_error("trace: cannot open '" + json_path +
                             "' for writing");
  }
  json << chrome_json();
  const std::string csv_path = metrics_csv_path(json_path);
  std::ofstream csv(csv_path, std::ios::binary | std::ios::trunc);
  if (!csv) {
    throw std::runtime_error("trace: cannot open '" + csv_path +
                             "' for writing");
  }
  csv << metrics_csv();
}

}  // namespace mdwf::obs
