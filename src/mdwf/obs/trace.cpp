#include "mdwf/obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "mdwf/common/assert.hpp"

namespace mdwf::obs {
namespace {

// Integer nanoseconds rendered as microseconds with exactly three decimals:
// deterministic (no floating point) and lossless.
void append_us(std::string& out, std::int64_t ns) {
  MDWF_ASSERT(ns >= 0);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::uint32_t TraceSink::intern(std::string_view s) {
  const auto it = name_index_.find(s);
  if (it != name_index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(s);
  name_index_.emplace(std::string(s), id);
  return id;
}

TrackId TraceSink::track(std::string_view process, std::string_view thread) {
  std::uint32_t pid;
  const auto pit = process_index_.find(process);
  if (pit != process_index_.end()) {
    pid = pit->second;
  } else {
    pid = static_cast<std::uint32_t>(processes_.size());
    processes_.push_back(Process{std::string(process), {}, {}});
    process_index_.emplace(std::string(process), pid);
  }
  Process& proc = processes_[pid];
  std::uint32_t tid;
  const auto tit = proc.thread_index.find(thread);
  if (tit != proc.thread_index.end()) {
    tid = tit->second;
  } else {
    tid = static_cast<std::uint32_t>(proc.threads.size());
    proc.threads.emplace_back(thread);
    proc.thread_index.emplace(std::string(thread), tid);
  }
  return TrackId{pid, tid};
}

void TraceSink::span(TrackId t, std::string_view name,
                     std::string_view category, TimePoint start,
                     Duration duration) {
  events_.push_back(Event{Kind::kSpan, t, intern(name), intern(category),
                          start.ns(), duration.ns(), 0});
  ++span_count_;
}

void TraceSink::instant(TrackId t, std::string_view name, TimePoint at) {
  events_.push_back(
      Event{Kind::kInstant, t, intern(name), 0, at.ns(), 0, 0});
}

void TraceSink::counter(TrackId t, std::string_view name, TimePoint at,
                        std::int64_t value) {
  events_.push_back(
      Event{Kind::kCounter, t, intern(name), 0, at.ns(), 0, value});
  ++counter_samples_;
}

std::vector<std::uint32_t> TraceSink::sorted_order() const {
  std::vector<std::uint32_t> order(events_.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  // Stable: events at the same instant keep emission order (FIFO, like the
  // simulator's own event queue).
  std::stable_sort(order.begin(), order.end(),
                   [this](std::uint32_t a, std::uint32_t b) {
                     return events_[a].ts_ns < events_[b].ts_ns;
                   });
  return order;
}

std::string TraceSink::chrome_json() const {
  std::string out;
  out.reserve(128 + events_.size() * 96);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Metadata: name and sort order for every registered lane.
  for (std::uint32_t pid = 0; pid < processes_.size(); ++pid) {
    const Process& proc = processes_[pid];
    sep();
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":0,\"args\":{\"name\":";
    append_json_string(out, proc.name);
    out += "}}";
    sep();
    out += "{\"ph\":\"M\",\"name\":\"process_sort_index\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":0,\"args\":{\"sort_index\":";
    out += std::to_string(pid);
    out += "}}";
    for (std::uint32_t tid = 0; tid < proc.threads.size(); ++tid) {
      sep();
      out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":";
      out += std::to_string(pid);
      out += ",\"tid\":";
      out += std::to_string(tid);
      out += ",\"args\":{\"name\":";
      append_json_string(out, proc.threads[tid]);
      out += "}}";
      sep();
      out += "{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":";
      out += std::to_string(pid);
      out += ",\"tid\":";
      out += std::to_string(tid);
      out += ",\"args\":{\"sort_index\":";
      out += std::to_string(tid);
      out += "}}";
    }
  }

  for (const std::uint32_t i : sorted_order()) {
    const Event& e = events_[i];
    sep();
    switch (e.kind) {
      case Kind::kSpan:
        out += "{\"ph\":\"X\",\"name\":";
        append_json_string(out, names_[e.name]);
        out += ",\"cat\":";
        append_json_string(out, names_[e.cat]);
        out += ",\"pid\":";
        out += std::to_string(e.track.pid);
        out += ",\"tid\":";
        out += std::to_string(e.track.tid);
        out += ",\"ts\":";
        append_us(out, e.ts_ns);
        out += ",\"dur\":";
        append_us(out, e.dur_ns);
        out += "}";
        break;
      case Kind::kInstant:
        out += "{\"ph\":\"i\",\"name\":";
        append_json_string(out, names_[e.name]);
        out += ",\"pid\":";
        out += std::to_string(e.track.pid);
        out += ",\"tid\":";
        out += std::to_string(e.track.tid);
        out += ",\"ts\":";
        append_us(out, e.ts_ns);
        out += ",\"s\":\"t\"}";
        break;
      case Kind::kCounter:
        out += "{\"ph\":\"C\",\"name\":";
        append_json_string(out, names_[e.name]);
        out += ",\"pid\":";
        out += std::to_string(e.track.pid);
        out += ",\"tid\":";
        out += std::to_string(e.track.tid);
        out += ",\"ts\":";
        append_us(out, e.ts_ns);
        out += ",\"args\":{\"value\":";
        out += std::to_string(e.value);
        out += "}}";
        break;
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string TraceSink::metrics_csv() const {
  std::string out = "ts_us,process,track,counter,value\n";
  for (const std::uint32_t i : sorted_order()) {
    const Event& e = events_[i];
    if (e.kind != Kind::kCounter) continue;
    append_us(out, e.ts_ns);
    out += ',';
    out += processes_[e.track.pid].name;
    out += ',';
    out += processes_[e.track.pid].threads[e.track.tid];
    out += ',';
    out += names_[e.name];
    out += ',';
    out += std::to_string(e.value);
    out += '\n';
  }
  return out;
}

std::string TraceSink::metrics_csv_path(const std::string& json_path) {
  return json_path + ".metrics.csv";
}

void TraceSink::write(const std::string& json_path) const {
  std::ofstream json(json_path, std::ios::binary | std::ios::trunc);
  if (!json) {
    throw std::runtime_error("trace: cannot open '" + json_path +
                             "' for writing");
  }
  json << chrome_json();
  const std::string csv_path = metrics_csv_path(json_path);
  std::ofstream csv(csv_path, std::ios::binary | std::ios::trunc);
  if (!csv) {
    throw std::runtime_error("trace: cannot open '" + csv_path +
                             "' for writing");
  }
  csv << metrics_csv();
}

}  // namespace mdwf::obs
