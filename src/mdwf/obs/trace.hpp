// Deterministic event tracing (mdwf::obs).
//
// A `TraceSink` records the timeline of one simulated run: spans (region
// enter/exit, via perf::Recorder), counter samples (queue depths, active
// flows, cache state, sampled at the emitting resource's own event points),
// instant markers, and fault-window annotations.  Events carry virtual-time
// timestamps only, so two runs with the same seed produce byte-identical
// traces.
//
// Tracks give each event a home in the timeline: a *process* per simulated
// node (or server group), a *thread* per rank or resource on it — the
// Chrome trace-event pid/tid mapping, so an exported trace opens directly
// in chrome://tracing or Perfetto with one lane per rank/resource.
//
// Export formats:
//   chrome_json()  - Chrome trace-event JSON (one event per line, events
//                    sorted by timestamp, metadata first)
//   metrics_csv()  - flat CSV of every counter sample for offline analysis
//
// The sink depends only on mdwf::common; emitters pass timestamps in.  All
// instrumentation hooks are no-ops while no sink is attached (a null check),
// so tracing disabled costs nothing measurable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "mdwf/common/time.hpp"

namespace mdwf::obs {

// A (process, thread) lane in the exported timeline.
struct TrackId {
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
};

class TraceSink {
 public:
  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // Registers (or finds) the lane for `process`/`thread`.  Ids are assigned
  // in first-registration order, which is deterministic because testbed
  // construction is.
  TrackId track(std::string_view process, std::string_view thread);

  // Completed region [start, start+duration) on a lane.  `category` is a
  // short tag ("compute", "movement", "idle", "other", "fault").
  void span(TrackId t, std::string_view name, std::string_view category,
            TimePoint start, Duration duration);

  // Point event on a lane (e.g. "frame12 ready").
  void instant(TrackId t, std::string_view name, TimePoint at);

  // Sample of a named metric.  Counter names should be unique within their
  // process (Chrome keys counter series by pid + name), so emitters qualify
  // them ("nvme.inflight", "nic.tx.flows").
  void counter(TrackId t, std::string_view name, TimePoint at,
               std::int64_t value);

  std::size_t event_count() const { return events_.size(); }
  std::size_t counter_samples() const { return counter_samples_; }
  std::size_t span_count() const { return span_count_; }

  // Chrome trace-event JSON; loadable by chrome://tracing and Perfetto.
  std::string chrome_json() const;

  // Every counter sample: ts_us,process,track,counter,value.
  std::string metrics_csv() const;

  // Writes chrome_json() to `json_path` and metrics_csv() next to it (see
  // metrics_csv_path).  Throws std::runtime_error when a file cannot be
  // opened.
  void write(const std::string& json_path) const;
  static std::string metrics_csv_path(const std::string& json_path);

 private:
  enum class Kind : std::uint8_t { kSpan, kInstant, kCounter };

  struct Event {
    Kind kind;
    TrackId track;
    std::uint32_t name;  // interned
    std::uint32_t cat;   // interned; spans only
    std::int64_t ts_ns;
    std::int64_t dur_ns;
    std::int64_t value;
  };

  struct Process {
    std::string name;
    std::vector<std::string> threads;
    std::map<std::string, std::uint32_t, std::less<>> thread_index;
  };

  std::uint32_t intern(std::string_view s);
  // Indices into events_, sorted by (ts, insertion order).
  std::vector<std::uint32_t> sorted_order() const;

  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t, std::less<>> name_index_;
  std::vector<Process> processes_;
  std::map<std::string, std::uint32_t, std::less<>> process_index_;
  std::vector<Event> events_;
  std::size_t counter_samples_ = 0;
  std::size_t span_count_ = 0;
};

}  // namespace mdwf::obs
