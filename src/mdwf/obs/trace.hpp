// Deterministic event tracing (mdwf::obs).
//
// A `TraceSink` records the timeline of one simulated run: spans (region
// enter/exit, via perf::Recorder), counter samples (queue depths, active
// flows, cache state, sampled at the emitting resource's own event points),
// instant markers, and fault-window annotations.  Events carry virtual-time
// timestamps only, so two runs with the same seed produce byte-identical
// traces.
//
// The instrumentation surface is split into two phases:
//
//   Wiring time — emitters register their lanes and series once and keep the
//   returned handles:
//     track()          -> TrackId        (a pid/tid lane in the timeline)
//     span_id()        -> SpanId         (name + category on a lane)
//     counter_id()     -> CounterId      (a metric series on a lane)
//     instant_id()     -> InstantId      (a fixed-name marker)
//     instant_series() -> InstantId      (name = prefix + integer payload)
//   Interning here may allocate and dedupe; counter_id() additionally
//   rejects names that would collide under Chrome's pid+name counter keying.
//
//   Run time — the hot path appends one fixed-width binary record per event
//   into arena-backed chunks: a timestamp, a payload, and the interned
//   handle.  No allocation (amortized chunk refill aside), no string
//   formatting, no lookups.
//
// Export happens after the run: `chrome_json()` / `metrics_csv()` are
// materializers that replay the record log in timestamp order and render the
// same bytes the original string-based emitters produced.
//
// Tracks give each event a home in the timeline: a *process* per simulated
// node (or server group), a *thread* per rank or resource on it — the
// Chrome trace-event pid/tid mapping, so an exported trace opens directly
// in chrome://tracing or Perfetto with one lane per rank/resource.
//
// The sink depends only on mdwf::common; emitters pass timestamps in.  All
// instrumentation hooks are no-ops while no sink is attached (a null check),
// so tracing disabled costs nothing measurable.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mdwf/common/assert.hpp"
#include "mdwf/common/time.hpp"

namespace mdwf::obs {

// A (process, thread) lane in the exported timeline.
struct TrackId {
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
};

namespace detail {
inline constexpr std::uint32_t kInvalidHandle = 0xffffffffu;
}  // namespace detail

// Handles to interned event series.  Default-constructed handles are invalid
// and must not be emitted; emitters guard with `valid()` (or, more commonly,
// with their sink pointer being null).
struct SpanId {
  std::uint32_t v = detail::kInvalidHandle;
  bool valid() const { return v != detail::kInvalidHandle; }
};

struct CounterId {
  std::uint32_t v = detail::kInvalidHandle;
  bool valid() const { return v != detail::kInvalidHandle; }
};

struct InstantId {
  std::uint32_t v = detail::kInvalidHandle;
  bool valid() const { return v != detail::kInvalidHandle; }
};

class TraceSink {
 public:
  TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // --- Wiring time ----------------------------------------------------------

  // Registers (or finds) the lane for `process`/`thread`.  Ids are assigned
  // in first-registration order, which is deterministic because testbed
  // construction is.
  TrackId track(std::string_view process, std::string_view thread);

  // Interns a span series: a region `name` with a short `category` tag
  // ("compute", "movement", "idle", "other", "fault") on lane `t`.
  // Idempotent: the same (lane, name, category) returns the same handle.
  SpanId span_id(TrackId t, std::string_view name, std::string_view category);

  // Interns a counter series on lane `t`.  Chrome keys counter series by
  // pid + name, so a name may live on only one lane per process: a second
  // registration on the same lane dedupes to the first handle, and one on a
  // *different* lane of the same process throws std::logic_error (the
  // exported series would silently interleave two resources' samples).
  CounterId counter_id(TrackId t, std::string_view name);

  // Interns a fixed-name instant marker on lane `t`.
  InstantId instant_id(TrackId t, std::string_view name);

  // Interns an instant *series*: emitted records carry an integer payload
  // and materialize with name `prefix` + decimal payload (e.g. prefix "f="
  // with payload 12 renders as "f=12").  The payload formats at export time,
  // so per-frame markers cost no string building on the hot path.
  InstantId instant_series(TrackId t, std::string_view prefix);

  // --- Run time (hot path) --------------------------------------------------

  // Completed region [start, start+duration) of an interned span series.
  void span(SpanId s, TimePoint start, Duration duration) {
    MDWF_ASSERT(s.valid());
    append(s.v, start.ns(), duration.ns());
    ++span_count_;
  }

  // Point event of an interned marker (payload: series suffix, 0 otherwise).
  void instant(InstantId i, TimePoint at, std::int64_t payload = 0) {
    MDWF_ASSERT(i.valid());
    append(i.v, at.ns(), payload);
  }

  // Sample of an interned counter series.
  void counter(CounterId c, TimePoint at, std::int64_t value) {
    MDWF_ASSERT(c.valid());
    append(c.v, at.ns(), value);
    ++counter_samples_;
  }

  std::size_t event_count() const { return records_; }
  std::size_t counter_samples() const { return counter_samples_; }
  std::size_t span_count() const { return span_count_; }

  // Interned-table sizes, reported in the metrics_csv() comment header.
  std::size_t interned_names() const { return names_.size(); }
  std::size_t interned_handles() const { return handles_.size(); }
  std::size_t interned_tracks() const;

  // --- Materializers --------------------------------------------------------

  // Chrome trace-event JSON; loadable by chrome://tracing and Perfetto.
  std::string chrome_json() const;

  // Every counter sample: ts_us,process,track,counter,value.  Preceded by a
  // single '#'-prefixed comment line reporting interned-table stats; byte
  // comparisons across trace implementations strip '#' lines.
  std::string metrics_csv() const;

  // Writes chrome_json() to `json_path` and metrics_csv() next to it (see
  // metrics_csv_path).  Throws std::runtime_error when a file cannot be
  // opened.
  void write(const std::string& json_path) const;
  static std::string metrics_csv_path(const std::string& json_path);

 private:
  enum class Kind : std::uint8_t {
    kSpan,
    kInstant,
    kInstantSeries,
    kCounter,
  };

  // One interned event series (the wiring-time half of an event).
  struct Handle {
    Kind kind;
    TrackId track;
    std::uint32_t name;  // interned; instant-series: the prefix
    std::uint32_t cat;   // interned; spans only
  };

  // The fixed-width hot-path record: 24 bytes, no pointers, no strings.
  struct Record {
    std::int64_t ts_ns;
    std::int64_t payload;  // span: dur_ns; counter: value; series: suffix
    std::uint32_t handle;
    std::uint32_t pad_ = 0;
  };

  // Arena chunk.  Power-of-two record count so materializers can index the
  // log as a flat array with shift/mask.
  static constexpr std::uint32_t kChunkShift = 13;
  static constexpr std::uint32_t kChunkRecords = 1u << kChunkShift;  // 8192
  struct Chunk {
    Record recs[kChunkRecords];
  };

  void append(std::uint32_t handle, std::int64_t ts_ns, std::int64_t payload) {
    if (head_used_ == kChunkRecords) [[unlikely]] {
      grow();
    }
    Record& r = head_[head_used_++];
    r.ts_ns = ts_ns;
    r.payload = payload;
    r.handle = handle;
    ++records_;
  }
  void grow();

  const Record& record(std::size_t i) const {
    return chunks_[i >> kChunkShift]->recs[i & (kChunkRecords - 1)];
  }

  struct Process {
    std::string name;
    std::vector<std::string> threads;
    std::map<std::string, std::uint32_t, std::less<>> thread_index;
  };

  std::uint32_t intern(std::string_view s);
  std::uint32_t intern_handle(const Handle& h);
  // Indices into the record log, sorted by (ts, emission order).
  std::vector<std::uint32_t> sorted_order() const;

  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t, std::less<>> name_index_;
  std::vector<Process> processes_;
  std::map<std::string, std::uint32_t, std::less<>> process_index_;

  std::vector<Handle> handles_;
  // Dedupe: (kind, pid, tid, name, cat) -> handle index.
  std::map<std::tuple<std::uint8_t, std::uint32_t, std::uint32_t,
                      std::uint32_t, std::uint32_t>,
           std::uint32_t>
      handle_index_;
  // Chrome counter keying guard: (pid, name) -> handle index.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t>
      counter_key_index_;

  std::vector<std::unique_ptr<Chunk>> chunks_;
  Record* head_ = nullptr;
  std::uint32_t head_used_ = kChunkRecords;  // forces grow() on first append
  std::size_t records_ = 0;
  std::size_t counter_samples_ = 0;
  std::size_t span_count_ = 0;
};

// RAII span guard: opens at construction, emits the completed span when
// destroyed (or closed).  `clock` points at the simulation's virtual clock
// (sim::Simulation::now_ptr()), so the guard reads "now" without a
// dependency from obs onto the kernel.  A default-constructed or
// null-sink guard is inert, matching the "no sink attached" convention.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(TraceSink* sink, SpanId id, const TimePoint* clock)
      : sink_(sink), id_(id), clock_(clock) {
    if (sink_ != nullptr) {
      MDWF_ASSERT(clock_ != nullptr && id_.valid());
      start_ = *clock_;
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& o) noexcept
      : sink_(o.sink_), id_(o.id_), clock_(o.clock_), start_(o.start_) {
    o.sink_ = nullptr;
  }
  ScopedSpan& operator=(ScopedSpan&& o) noexcept {
    if (this != &o) {
      close();
      sink_ = o.sink_;
      id_ = o.id_;
      clock_ = o.clock_;
      start_ = o.start_;
      o.sink_ = nullptr;
    }
    return *this;
  }
  ~ScopedSpan() { close(); }

  // Emits the span early (idempotent).
  void close() {
    if (sink_ != nullptr) {
      sink_->span(id_, start_, *clock_ - start_);
      sink_ = nullptr;
    }
  }

 private:
  TraceSink* sink_ = nullptr;
  SpanId id_{};
  const TimePoint* clock_ = nullptr;
  TimePoint start_{};
};

}  // namespace mdwf::obs
