// Generic named counters (mdwf::obs).
//
// A `CounterMap` is an ordered set of name -> u64 counters.  Iteration
// follows first-insertion order, so any output path (tables, CSV headers)
// renders counters deterministically without knowing their names in
// advance: a subsystem adds a counter and every report picks it up.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mdwf::obs {

class CounterMap {
 public:
  using Item = std::pair<std::string, std::uint64_t>;

  // Adds `delta` to `name`, creating it at zero first (insertion order is
  // the order of first use).
  void add(std::string_view name, std::uint64_t delta);

  // Sets `name` to `value` (creates on first use).
  void set(std::string_view name, std::uint64_t value);

  // Current value; absent counters read as zero.
  std::uint64_t get(std::string_view name) const;

  bool contains(std::string_view name) const;
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  // Counters in first-insertion order.
  const std::vector<Item>& items() const { return items_; }
  std::vector<Item>::const_iterator begin() const { return items_.begin(); }
  std::vector<Item>::const_iterator end() const { return items_.end(); }

  // Adds every counter of `other` into this map.
  void merge(const CounterMap& other);

  // "counter,value" lines (with header), insertion order.
  std::string to_csv() const;

 private:
  std::uint64_t& slot(std::string_view name);

  std::vector<Item> items_;
  std::map<std::string, std::size_t, std::less<>> index_;
};

}  // namespace mdwf::obs
