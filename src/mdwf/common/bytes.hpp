// Strong byte-count type.
//
// Byte counts flow through every layer of the model (frames, pages, stripes,
// RDMA payloads); a dedicated type prevents silent unit mix-ups with counts
// and nanoseconds.
#pragma once

#include <compare>
#include <cstdint>

namespace mdwf {

class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::uint64_t v) : v_(v) {}

  static constexpr Bytes zero() { return Bytes(0); }
  static constexpr Bytes kib(std::uint64_t v) { return Bytes(v * 1024); }
  static constexpr Bytes mib(std::uint64_t v) { return Bytes(v * 1024 * 1024); }
  static constexpr Bytes gib(std::uint64_t v) {
    return Bytes(v * 1024 * 1024 * 1024);
  }

  constexpr std::uint64_t count() const { return v_; }
  constexpr double to_kib() const { return static_cast<double>(v_) / 1024.0; }
  constexpr double to_mib() const {
    return static_cast<double>(v_) / (1024.0 * 1024.0);
  }
  constexpr bool is_zero() const { return v_ == 0; }

  friend constexpr Bytes operator+(Bytes a, Bytes b) { return Bytes(a.v_ + b.v_); }
  friend constexpr Bytes operator-(Bytes a, Bytes b) { return Bytes(a.v_ - b.v_); }
  friend constexpr Bytes operator*(Bytes a, std::uint64_t k) {
    return Bytes(a.v_ * k);
  }
  friend constexpr Bytes operator*(std::uint64_t k, Bytes a) { return a * k; }
  friend constexpr std::uint64_t operator/(Bytes a, Bytes b) {
    return a.v_ / b.v_;
  }
  friend constexpr Bytes operator/(Bytes a, std::uint64_t k) {
    return Bytes(a.v_ / k);
  }
  constexpr Bytes& operator+=(Bytes o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes o) {
    v_ -= o.v_;
    return *this;
  }
  friend constexpr auto operator<=>(Bytes, Bytes) = default;

 private:
  std::uint64_t v_ = 0;
};

constexpr Bytes min(Bytes a, Bytes b) { return a < b ? a : b; }
constexpr Bytes max(Bytes a, Bytes b) { return a < b ? b : a; }

namespace literals {

constexpr Bytes operator""_B(unsigned long long v) {
  return Bytes(static_cast<std::uint64_t>(v));
}
constexpr Bytes operator""_KiB(unsigned long long v) {
  return Bytes::kib(static_cast<std::uint64_t>(v));
}
constexpr Bytes operator""_MiB(unsigned long long v) {
  return Bytes::mib(static_cast<std::uint64_t>(v));
}
constexpr Bytes operator""_GiB(unsigned long long v) {
  return Bytes::gib(static_cast<std::uint64_t>(v));
}

}  // namespace literals

}  // namespace mdwf
