#include "mdwf/common/crc32c.hpp"

#include <array>

namespace mdwf {
namespace {

// Table for the reflected Castagnoli polynomial 0x1EDC6F41.
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t seed) {
  return crc32c(data.data(), data.size(), seed);
}

}  // namespace mdwf
