// Streaming and batch statistics used by the measurement layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mdwf {

// Welford's online algorithm: numerically stable mean/variance without
// retaining samples.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Batch summary that also supports order statistics.
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  void reserve(std::size_t n) { xs_.reserve(n); }

  std::size_t count() const { return xs_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const;
  // Linear-interpolated quantile, q in [0,1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  const std::vector<double>& values() const { return xs_; }

 private:
  std::vector<double> xs_;
};

}  // namespace mdwf
