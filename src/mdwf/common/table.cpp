#include "mdwf/common/table.hpp"

#include <algorithm>

#include "mdwf/common/assert.hpp"

namespace mdwf {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), align_(headers_.size(), Align::kRight) {
  MDWF_ASSERT(!headers_.empty());
  align_[0] = Align::kLeft;
}

void TextTable::set_align(std::size_t col, Align a) {
  MDWF_ASSERT(col < align_.size());
  align_[col] = a;
}

void TextTable::add_row(std::vector<std::string> cells) {
  MDWF_ASSERT_MSG(cells.size() == headers_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto emit_cell = [&](std::string& out, const std::string& s, std::size_t c) {
    const std::size_t pad = width[c] - s.size();
    if (align_[c] == Align::kRight) out.append(pad, ' ');
    out += s;
    if (align_[c] == Align::kLeft) out.append(pad, ' ');
  };

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out += "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      emit_cell(out, row[c], c);
      out += (c + 1 == row.size()) ? " |\n" : " | ";
    }
  };

  emit_row(headers_);
  out += "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.append(width[c] + 2, '-');
    out += (c + 1 == headers_.size()) ? "|\n" : "|";
  }
  for (const auto& row : rows_) emit_row(row);
  return out;
}

}  // namespace mdwf
