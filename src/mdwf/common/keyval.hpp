// Minimal key=value configuration, for the CLI driver and config files.
//
// Accepts `key=value` tokens (command-line arguments, with an optional
// leading `--`) and config files with one `key = value` pair per line
// (# comments, blank lines allowed).  Later assignments override earlier
// ones.  Typed getters validate on access.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mdwf {

class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

class KeyValueConfig {
 public:
  // Parses argv[1..]; returns positional (non key=value) tokens in order.
  std::vector<std::string> parse_args(int argc, const char* const* argv);

  // Parses a config file stream; throws ConfigError with the line number
  // on malformed input.
  void parse_stream(std::istream& in);

  void set(std::string key, std::string value);

  bool has(std::string_view key) const;
  std::vector<std::string> keys() const;

  std::string get_string(std::string_view key,
                         std::string_view fallback) const;
  std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
  std::uint64_t get_uint(std::string_view key, std::uint64_t fallback) const;
  double get_double(std::string_view key, double fallback) const;
  // Accepts 1/0, true/false, yes/no, on/off.
  bool get_bool(std::string_view key, bool fallback) const;

  // Marks keys as recognized; `unknown_keys` reports the rest (catches
  // typos in experiment configs).
  void note_known(std::string_view key) const;
  std::vector<std::string> unknown_keys() const;

 private:
  std::optional<std::string> find(std::string_view key) const;

  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> known_;
};

}  // namespace mdwf
