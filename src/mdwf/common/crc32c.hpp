// CRC-32C (Castagnoli) used to checksum serialized MD frames.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace mdwf {

// One-shot CRC over a buffer.  `seed` allows incremental composition:
// crc32c(b, crc32c(a)) == crc32c(a ++ b).
std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t seed = 0);

std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t seed = 0);

}  // namespace mdwf
