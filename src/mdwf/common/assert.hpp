// Internal invariant checking.
//
// MDWF_ASSERT is active in all build types: the simulator's correctness
// depends on kernel invariants (event ordering, resource accounting), and the
// cost of the checks is negligible next to event-queue operations.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mdwf::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "mdwf: assertion failed: %s (%s:%d)%s%s\n", expr, file,
               line, msg ? " - " : "", msg ? msg : "");
  std::abort();
}

}  // namespace mdwf::detail

#define MDWF_ASSERT(expr)                                              \
  ((expr) ? static_cast<void>(0)                                       \
          : ::mdwf::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define MDWF_ASSERT_MSG(expr, msg)                                     \
  ((expr) ? static_cast<void>(0)                                       \
          : ::mdwf::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)))
