// Deterministic pseudo-random number generation.
//
// xoshiro256** seeded through splitmix64.  Every stochastic component of the
// testbed (jitter, interference, workload generators) derives its stream from
// an explicit seed so that a run is reproducible from its configuration alone.
// `Rng::fork(tag)` derives independent child streams, which keeps component
// randomness decoupled: adding draws in one module does not perturb another.
#pragma once

#include <cstdint>
#include <string_view>

namespace mdwf {

class Rng {
 public:
  // Seeds the four words of state via splitmix64; seed 0 is remapped so the
  // all-zero state (a fixed point of xoshiro) can never occur.
  explicit Rng(std::uint64_t seed = 1);

  std::uint64_t next_u64();

  // Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform in [0, 1).
  double next_double();

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  // Standard normal via Box-Muller (no cached second value: determinism over
  // micro-efficiency).
  double normal(double mean, double stddev);

  // Log-normal with the given *underlying* normal parameters.
  double lognormal(double mu, double sigma);

  // Exponential with the given rate (events per unit).
  double exponential(double rate);

  bool bernoulli(double p);

  // Derives an independent generator from this one's seed material plus a
  // string tag (FNV-1a hashed).  Does not advance this generator.
  Rng fork(std::string_view tag) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_material_;
};

}  // namespace mdwf
