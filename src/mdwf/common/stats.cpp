#include "mdwf/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "mdwf/common/assert.hpp"

namespace mdwf {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double d = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += d * nb / n;
  m2_ += other.m2_ + d * d * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Samples::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : xs_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs_.size() - 1));
}

double Samples::min() const {
  return xs_.empty() ? 0.0 : *std::min_element(xs_.begin(), xs_.end());
}

double Samples::max() const {
  return xs_.empty() ? 0.0 : *std::max_element(xs_.begin(), xs_.end());
}

double Samples::sum() const {
  double s = 0.0;
  for (double x : xs_) s += x;
  return s;
}

double Samples::quantile(double q) const {
  MDWF_ASSERT(q >= 0.0 && q <= 1.0);
  if (xs_.empty()) return 0.0;
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace mdwf
