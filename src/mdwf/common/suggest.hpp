// "Did you mean ...?" suggestions for unknown names.
//
// One Levenshtein implementation shared by every fail-fast name check
// (experiment config keys, fault scenario names, bench.sh suite names)
// instead of per-module copies.  A suggestion is offered only when the
// best candidate is within 2 edits — beyond that the hint is noise.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace mdwf {

// Levenshtein edit distance (insert / delete / substitute, unit cost).
std::size_t edit_distance(std::string_view a, std::string_view b);

// " (did you mean 'x'?)" for the closest candidate within 2 edits, else "".
std::string did_you_mean(std::string_view given,
                         const std::vector<std::string_view>& candidates);
std::string did_you_mean(std::string_view given,
                         const std::vector<std::string>& candidates);

template <std::size_t N>
std::string did_you_mean(std::string_view given,
                         const std::string_view (&candidates)[N]) {
  return did_you_mean(
      given, std::vector<std::string_view>(candidates, candidates + N));
}

}  // namespace mdwf
