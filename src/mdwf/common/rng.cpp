#include "mdwf/common/rng.hpp"

#include <cmath>
#include <numbers>

#include "mdwf/common/assert.hpp"

namespace mdwf {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_material_(seed) {
  std::uint64_t x = seed == 0 ? 0xA5A5A5A5DEADBEEFull : seed;
  for (auto& w : s_) w = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  MDWF_ASSERT(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  // 53 high bits -> uniform double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal(double mean, double stddev) {
  double u1 = next_double();
  // Avoid log(0).
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  MDWF_ASSERT(rate > 0.0);
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) { return next_double() < p; }

Rng Rng::fork(std::string_view tag) const {
  return Rng(seed_material_ ^ fnv1a(tag) ^ 0x6A09E667F3BCC908ull);
}

}  // namespace mdwf
