#include "mdwf/common/suggest.hpp"

#include <algorithm>

namespace mdwf {

std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      const std::size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
      diag = up;
    }
  }
  return row[b.size()];
}

namespace {

template <typename Candidates>
std::string suggest(std::string_view given, const Candidates& candidates) {
  std::string_view best;
  std::size_t best_distance = 3;  // only suggest within 2 edits
  for (const auto& candidate : candidates) {
    const std::size_t d = edit_distance(given, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  if (best.empty()) return "";
  return " (did you mean '" + std::string(best) + "'?)";
}

}  // namespace

std::string did_you_mean(std::string_view given,
                         const std::vector<std::string_view>& candidates) {
  return suggest(given, candidates);
}

std::string did_you_mean(std::string_view given,
                         const std::vector<std::string>& candidates) {
  return suggest(given, candidates);
}

}  // namespace mdwf
