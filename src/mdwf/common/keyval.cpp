#include "mdwf/common/keyval.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace mdwf {
namespace {

std::string trim(std::string_view s) {
  const auto notspace = [](unsigned char c) { return !std::isspace(c); };
  const auto begin = std::find_if(s.begin(), s.end(), notspace);
  const auto end = std::find_if(s.rbegin(), s.rend(), notspace).base();
  return begin < end ? std::string(begin, end) : std::string();
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

std::vector<std::string> KeyValueConfig::parse_args(int argc,
                                                    const char* const* argv) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string_view tok = argv[i];
    if (tok.substr(0, 2) == "--") tok.remove_prefix(2);
    const auto eq = tok.find('=');
    if (eq == std::string_view::npos) {
      positional.emplace_back(tok);
      continue;
    }
    set(trim(tok.substr(0, eq)), trim(tok.substr(eq + 1)));
  }
  return positional;
}

void KeyValueConfig::parse_stream(std::istream& in) {
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::string t = trim(line);
    if (t.empty()) continue;
    const auto eq = t.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("line " + std::to_string(lineno) +
                        ": expected key = value, got '" + t + "'");
    }
    const std::string key = trim(std::string_view(t).substr(0, eq));
    const std::string value = trim(std::string_view(t).substr(eq + 1));
    if (key.empty()) {
      throw ConfigError("line " + std::to_string(lineno) + ": empty key");
    }
    set(key, value);
  }
}

void KeyValueConfig::set(std::string key, std::string value) {
  values_.insert_or_assign(std::move(key), std::move(value));
}

bool KeyValueConfig::has(std::string_view key) const {
  return values_.contains(std::string(key));
}

std::vector<std::string> KeyValueConfig::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

std::optional<std::string> KeyValueConfig::find(std::string_view key) const {
  note_known(key);
  const auto it = values_.find(std::string(key));
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string KeyValueConfig::get_string(std::string_view key,
                                       std::string_view fallback) const {
  const auto v = find(key);
  return v.has_value() ? *v : std::string(fallback);
}

std::int64_t KeyValueConfig::get_int(std::string_view key,
                                     std::int64_t fallback) const {
  const auto v = find(key);
  if (!v.has_value()) return fallback;
  std::int64_t out = 0;
  const auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  if (ec != std::errc{} || ptr != v->data() + v->size()) {
    throw ConfigError("key '" + std::string(key) + "': '" + *v +
                      "' is not an integer");
  }
  return out;
}

std::uint64_t KeyValueConfig::get_uint(std::string_view key,
                                       std::uint64_t fallback) const {
  const std::int64_t v =
      get_int(key, static_cast<std::int64_t>(fallback));
  if (v < 0) {
    throw ConfigError("key '" + std::string(key) + "' must be non-negative");
  }
  return static_cast<std::uint64_t>(v);
}

double KeyValueConfig::get_double(std::string_view key,
                                  double fallback) const {
  const auto v = find(key);
  if (!v.has_value()) return fallback;
  try {
    std::size_t pos = 0;
    const double out = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing");
    return out;
  } catch (const std::exception&) {
    throw ConfigError("key '" + std::string(key) + "': '" + *v +
                      "' is not a number");
  }
}

bool KeyValueConfig::get_bool(std::string_view key, bool fallback) const {
  const auto v = find(key);
  if (!v.has_value()) return fallback;
  const std::string s = lower(*v);
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  throw ConfigError("key '" + std::string(key) + "': '" + *v +
                    "' is not a boolean");
}

void KeyValueConfig::note_known(std::string_view key) const {
  known_[std::string(key)] = true;
}

std::vector<std::string> KeyValueConfig::unknown_keys() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) {
    if (!known_.contains(k)) out.push_back(k);
  }
  return out;
}

}  // namespace mdwf
