// Plain-text table renderer for benchmark harness output.
//
// Produces aligned, pipe-delimited tables mirroring the paper's tables so
// measured and published rows can be compared side by side.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mdwf {

class TextTable {
 public:
  enum class Align { kLeft, kRight };

  explicit TextTable(std::vector<std::string> headers);

  // All data columns default to right alignment, the first to left.
  void set_align(std::size_t col, Align a);

  void add_row(std::vector<std::string> cells);

  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> align_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mdwf
