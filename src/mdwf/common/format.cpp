#include "mdwf/common/format.hpp"

#include <cstdio>

namespace mdwf {
namespace {

std::string printf_str(const char* fmt, double v, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v, suffix);
  return buf;
}

}  // namespace

std::string format_bytes(Bytes b) {
  const double v = static_cast<double>(b.count());
  if (v >= 1024.0 * 1024.0 * 1024.0) {
    return printf_str("%.2f %s", v / (1024.0 * 1024.0 * 1024.0), "GiB");
  }
  if (v >= 1024.0 * 1024.0) {
    return printf_str("%.2f %s", v / (1024.0 * 1024.0), "MiB");
  }
  if (v >= 1024.0) {
    return printf_str("%.2f %s", v / 1024.0, "KiB");
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu B",
                static_cast<unsigned long long>(b.count()));
  return buf;
}

std::string format_duration(Duration d) {
  const double ns = static_cast<double>(d.ns());
  const double a = ns < 0 ? -ns : ns;
  if (a >= 1e9) return printf_str("%.3f %s", ns * 1e-9, "s");
  if (a >= 1e6) return printf_str("%.3f %s", ns * 1e-6, "ms");
  if (a >= 1e3) return printf_str("%.3f %s", ns * 1e-3, "us");
  return printf_str("%.0f %s", ns, "ns");
}

std::string format_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string format_ratio(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fx", decimals, v);
  return buf;
}

}  // namespace mdwf
