// Human-readable formatting helpers for reports and benchmark output.
#pragma once

#include <string>

#include "mdwf/common/bytes.hpp"
#include "mdwf/common/time.hpp"

namespace mdwf {

// "644.21 KiB", "28.48 MiB", "12 B".
std::string format_bytes(Bytes b);

// Scales to the most natural unit: "1.53 us", "4.27 ms", "1.2 s".
std::string format_duration(Duration d);

// Fixed-point with the given number of decimals.
std::string format_double(double v, int decimals = 2);

// "1.4x" style ratio.
std::string format_ratio(double v, int decimals = 1);

}  // namespace mdwf
