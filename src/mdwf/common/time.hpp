// Virtual-time types for the discrete-event simulator.
//
// All simulated time is kept in signed 64-bit nanoseconds.  Integer
// nanoseconds make event ordering exact and runs bit-reproducible; the range
// (+/- ~292 years) is far beyond any simulated workflow.  `Duration` is a
// span, `TimePoint` an absolute instant since simulation start.
#pragma once

#include <cmath>
#include <compare>
#include <concepts>
#include <cstdint>
#include <limits>

#include "mdwf/common/assert.hpp"

namespace mdwf {

class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration max() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }
  static constexpr Duration nanoseconds(std::int64_t v) { return Duration(v); }
  static constexpr Duration microseconds(std::int64_t v) {
    return Duration(v * 1000);
  }
  static constexpr Duration milliseconds(std::int64_t v) {
    return Duration(v * 1'000'000);
  }
  static constexpr Duration seconds_i(std::int64_t v) {
    return Duration(v * 1'000'000'000);
  }
  // Rounds to the nearest nanosecond.
  static Duration seconds(double v) {
    MDWF_ASSERT_MSG(std::isfinite(v), "duration from non-finite seconds");
    return Duration(static_cast<std::int64_t>(std::llround(v * 1e9)));
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr double to_micros() const { return static_cast<double>(ns_) * 1e-3; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration(a.ns_ + b.ns_);
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration(a.ns_ - b.ns_);
  }
  template <std::integral I>
  friend constexpr Duration operator*(Duration a, I k) {
    return Duration(a.ns_ * static_cast<std::int64_t>(k));
  }
  template <std::integral I>
  friend constexpr Duration operator*(I k, Duration a) {
    return a * k;
  }
  template <std::floating_point F>
  friend Duration operator*(Duration a, F k) {
    return Duration(static_cast<std::int64_t>(
        std::llround(static_cast<double>(a.ns_) * static_cast<double>(k))));
  }
  friend constexpr std::int64_t operator/(Duration a, Duration b) {
    return a.ns_ / b.ns_;
  }
  friend constexpr Duration operator/(Duration a, std::int64_t k) {
    return Duration(a.ns_ / k);
  }
  constexpr Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ns_ -= o.ns_;
    return *this;
  }
  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  std::int64_t ns_ = 0;
};

class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}

  static constexpr TimePoint origin() { return TimePoint(0); }
  static constexpr TimePoint max() {
    return TimePoint(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint(t.ns_ + d.ns());
  }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint(t.ns_ - d.ns());
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration(a.ns_ - b.ns_);
  }
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

 private:
  std::int64_t ns_ = 0;
};

namespace literals {

constexpr Duration operator""_ns(unsigned long long v) {
  return Duration(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_us(unsigned long long v) {
  return Duration::microseconds(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::milliseconds(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_s(unsigned long long v) {
  return Duration::seconds_i(static_cast<std::int64_t>(v));
}

}  // namespace literals

}  // namespace mdwf
