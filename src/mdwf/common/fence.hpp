// Incarnation-epoch fencing for the membership plane.
//
// Every compute node starts at incarnation 0.  When the controller declares a
// node permanently lost it bumps that node's incarnation in the shared
// FenceRegistry; daemons born under the old incarnation (DYAD metadata
// service clients, stream endpoints, Lustre clients) become *fenced*: the
// first server-side round trip that observes the bumped incarnation rejects
// the operation with StaleEpochError instead of applying it.  This is what
// stops a zombie — a node cut off by an asymmetric partition, declared dead,
// then healed — from corrupting the namespace with stale publishes.
//
// StaleEpochError deliberately does NOT derive from net::NetError: the rank
// fault-retry loops treat NetError as transient and retry, whereas a fence
// rejection is permanent for that incarnation and must surface to the rank
// so it can migrate.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mdwf {

// Identity of one node daemon: which node it serves and the incarnation it
// was born under.  Daemons never rebirth in place, so a live daemon's
// incarnation equals the registry value recorded at simulation start (0) and
// becomes stale exactly when the controller fences the node.
struct FenceToken {
  std::uint32_t node = 0;
  std::uint64_t incarnation = 0;
};

// Thrown by a fenced server path; not a NetError, so retry loops do not
// swallow it (see header comment).
class StaleEpochError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Controller-owned map: node id -> current incarnation, plus a reject tally.
// Single-threaded per simulation repetition (the DES kernel serialises all
// access), so no synchronisation is needed.
class FenceRegistry {
 public:
  explicit FenceRegistry(std::uint32_t nodes = 0) : current_(nodes, 0) {}

  // Grow the registry to cover `node` (new entries start at incarnation 0).
  void ensure(std::uint32_t node) {
    if (node >= current_.size()) current_.resize(node + 1, 0);
  }

  std::uint32_t size() const { return static_cast<std::uint32_t>(current_.size()); }

  std::uint64_t current(std::uint32_t node) const {
    return node < current_.size() ? current_[node] : 0;
  }

  // Bump the node's incarnation (a declare).  Returns the new incarnation.
  std::uint64_t fence(std::uint32_t node) {
    ensure(node);
    return ++current_[node];
  }

  bool stale(const FenceToken& token) const {
    return token.incarnation < current(token.node);
  }

  // Count one rejected stale operation and throw.  `what` names the path
  // (e.g. "kvs commit", "lustre create") for the error text.
  [[noreturn]] void reject(const FenceToken& token, const std::string& what) {
    ++rejects_;
    throw StaleEpochError("stale incarnation " +
                          std::to_string(token.incarnation) + " < " +
                          std::to_string(current(token.node)) + " for node " +
                          std::to_string(token.node) + ": " + what +
                          " fenced");
  }

  // Count a rejection that is handled in place (e.g. a heartbeat re-join
  // from a declared node) rather than surfaced as an exception.
  void count_reject() { ++rejects_; }

  std::uint64_t stale_rejects() const { return rejects_; }

 private:
  std::vector<std::uint64_t> current_;
  std::uint64_t rejects_ = 0;
};

}  // namespace mdwf
