#include "mdwf/workflow/ensemble.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "mdwf/common/assert.hpp"

namespace mdwf::workflow {

std::string frame_path(std::uint32_t pair, std::uint64_t f) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "pair%04u/frame%05llu", pair,
                static_cast<unsigned long long>(f));
  return buf;
}

std::string pair_prefix(std::uint32_t pair) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "pair%04u/", pair);
  return buf;
}

namespace {

// Frame-boundary timeline marker ("f=<n>") on the rank's trace lane.
void trace_frame(const RankContext& ctx, std::uint64_t f) {
  if (ctx.trace == nullptr) return;
  ctx.trace->instant(ctx.track, "f=" + std::to_string(f), ctx.sim->now());
}

}  // namespace

sim::Task<void> run_producer(RankContext ctx) {
  auto& sim = *ctx.sim;
  auto& recorder = *ctx.recorder;
  const WorkloadConfig& workload = ctx.workload;
  const Bytes wire_bytes = workload.wire_bytes();
  if (workload.start_stagger > 0.0) {
    // Launch/equilibration phase offset; desynchronizes ensemble members.
    co_await sim.delay(workload.frame_compute() *
                       (workload.start_stagger * ctx.rng.next_double()));
  }
  for (std::uint64_t f = 0; f < workload.frames; ++f) {
    {
      // MD steps between output frames; jitter models run-to-run rate
      // variability of a real simulation.
      perf::ScopedRegion compute(recorder, "md_compute",
                                 perf::Category::kCompute);
      const double jitter =
          std::max(-0.5, ctx.rng.normal(0.0, workload.step_jitter_sigma));
      co_await sim.delay(workload.frame_compute() * (1.0 + jitter));
    }
    {
      perf::ScopedRegion ser(recorder, "serialize", perf::Category::kCompute);
      co_await sim.delay(workload.serialize_time());
    }
    if (workload.compress) {
      perf::ScopedRegion comp(recorder, "compress", perf::Category::kCompute);
      co_await sim.delay(workload.compress_time());
    }
    {
      perf::ScopedRegion produce(recorder, "produce");
      co_await ctx.connector->put(frame_path(ctx.pair, f), wire_bytes);
    }
    trace_frame(ctx, f);
    co_await ctx.connector->producer_sync();
  }
}

sim::Task<void> run_consumer(RankContext ctx) {
  auto& sim = *ctx.sim;
  auto& recorder = *ctx.recorder;
  const WorkloadConfig& workload = ctx.workload;
  const Bytes wire_bytes = workload.wire_bytes();
  for (std::uint64_t f = 0; f < workload.frames; ++f) {
    {
      perf::ScopedRegion consume(recorder, "consume");
      co_await ctx.connector->get(frame_path(ctx.pair, f), wire_bytes);
    }
    trace_frame(ctx, f);
    if (workload.compress) {
      perf::ScopedRegion dec(recorder, "decompress",
                             perf::Category::kCompute);
      co_await sim.delay(workload.decompress_time());
    }
    {
      perf::ScopedRegion des(recorder, "deserialize",
                             perf::Category::kCompute);
      co_await sim.delay(workload.serialize_time());
    }
    {
      // Analytics emulation matches the frame-generation frequency
      // (paper Sec. IV-C).
      perf::ScopedRegion ana(recorder, "analytics", perf::Category::kCompute);
      co_await sim.delay(workload.frame_compute());
    }
    ctx.connector->acknowledge();
  }
}

namespace {

sim::Task<void> run_all_and_mark(sim::Simulation& sim,
                                 std::vector<sim::Task<void>> tasks,
                                 TimePoint& end) {
  co_await sim::all(sim, std::move(tasks));
  end = sim.now();
}

// Per-frame mean of a category inside a region subtree, in microseconds.
double per_frame_us(const perf::CallTree& tree, std::string_view subtree,
                    perf::Category cat, std::uint64_t frames) {
  return tree.category_time(subtree, cat).to_micros() /
         static_cast<double>(frames);
}

}  // namespace

EnsembleResult run_ensemble(const EnsembleConfig& config) {
  MDWF_ASSERT(config.pairs >= 1);
  const bool colocated =
      config.nodes == 1 || config.placement == Placement::kColocated;
  MDWF_ASSERT_MSG(colocated || config.nodes % 2 == 0,
                  "split multi-node ensembles need an even node count");
  MDWF_ASSERT_MSG(config.solution != Solution::kXfs || colocated,
                  "XFS cannot move data between nodes (paper Sec. III-B)");

  EnsembleResult result;

  // Register every counter up front so table/CSV columns are stable across
  // solutions and fault plans (zero when a path never fired).
  for (const char* name :
       {"dyad_warm_hits", "dyad_kvs_waits", "dyad_kvs_retries",
        "dyad_recovery_retries", "dyad_failovers", "dyad_republishes",
        "kvs_commits", "kvs_lookups", "cache_hits", "cache_misses",
        "fault_windows_applied", "sim_events", "trace_events"}) {
    result.counters.add(name, 0);
  }

  // Only the first repetition is traced: every rep is an independent
  // simulation starting at t=0, so a combined timeline would interleave
  // unrelated runs.
  obs::TraceSink trace_sink;
  const bool tracing = !config.trace_path.empty();

  for (std::uint32_t rep = 0; rep < config.repetitions; ++rep) {
    TestbedParams tp = config.testbed;
    tp.compute_nodes = config.nodes;
    tp.trace = (tracing && rep == 0) ? &trace_sink : nullptr;
    Testbed tb(tp);
    auto& sim = tb.simulation();
    obs::TraceSink* sink = tp.trace;

    const std::uint32_t producer_nodes =
        colocated ? config.nodes : config.nodes / 2;
    const std::uint32_t ranks_per_node =
        (config.pairs + producer_nodes - 1) / producer_nodes;

    auto producer_node = [&](std::uint32_t pair) {
      return pair / ranks_per_node;
    };
    auto consumer_node = [&](std::uint32_t pair) {
      return colocated ? pair / ranks_per_node
                       : producer_nodes + pair / ranks_per_node;
    };

    std::vector<std::unique_ptr<perf::Recorder>> prod_recs;
    std::vector<std::unique_ptr<perf::Recorder>> cons_recs;
    std::vector<std::unique_ptr<ExplicitSync>> syncs;
    std::vector<std::unique_ptr<Connector>> prod_conn;
    std::vector<std::unique_ptr<Connector>> cons_conn;
    std::vector<sim::Task<void>> tasks;

    const Rng rep_rng(config.base_seed + rep);

    for (std::uint32_t pair = 0; pair < config.pairs; ++pair) {
      prod_recs.push_back(std::make_unique<perf::Recorder>(
          sim, "producer" + std::to_string(pair)));
      cons_recs.push_back(std::make_unique<perf::Recorder>(
          sim, "consumer" + std::to_string(pair)));
      auto& prec = *prod_recs.back();
      auto& crec = *cons_recs.back();
      const std::uint32_t pnode = producer_node(pair);
      const std::uint32_t cnode = consumer_node(pair);

      ExplicitSync* sync = nullptr;
      if (config.solution != Solution::kDyad) {
        syncs.push_back(std::make_unique<ExplicitSync>(sim));
        sync = syncs.back().get();
      }
      // XFS is colocated by construction: both ranks share pnode's local FS.
      const std::uint32_t cnode_eff =
          config.solution == Solution::kXfs ? pnode : cnode;
      prod_conn.push_back(make_connector({.testbed = &tb,
                                          .solution = config.solution,
                                          .node = pnode,
                                          .sync = sync,
                                          .recorder = &prec}));
      cons_conn.push_back(make_connector({.testbed = &tb,
                                          .solution = config.solution,
                                          .node = cnode_eff,
                                          .sync = sync,
                                          .recorder = &crec}));
      if (config.solution == Solution::kDyad && tp.dyad.push_mode) {
        tb.dyad_domain().subscribe(pair_prefix(pair), net::NodeId{cnode});
      }

      RankContext pctx{.sim = &sim,
                       .connector = prod_conn.back().get(),
                       .recorder = &prec,
                       .workload = config.workload,
                       .pair = pair,
                       .rng = rep_rng.fork("pair" + std::to_string(pair))};
      RankContext cctx{.sim = &sim,
                       .connector = cons_conn.back().get(),
                       .recorder = &crec,
                       .workload = config.workload,
                       .pair = pair};
      if (sink != nullptr) {
        // One trace lane per rank, on the process of the node it runs on.
        pctx.trace = cctx.trace = sink;
        pctx.track = sink->track("node" + std::to_string(pnode),
                                 "producer" + std::to_string(pair));
        cctx.track = sink->track("node" + std::to_string(cnode),
                                 "consumer" + std::to_string(pair));
        prec.set_trace(sink, pctx.track);
        crec.set_trace(sink, cctx.track);
      }
      tasks.push_back(run_producer(pctx));
      tasks.push_back(run_consumer(cctx));
    }

    if (config.lustre_interference) {
      // Horizon generously beyond the serialized-workflow makespan.
      const Duration per_frame = config.workload.frame_compute();
      const TimePoint horizon =
          TimePoint::origin() +
          per_frame * static_cast<std::int64_t>(3 * config.workload.frames) +
          Duration::seconds_i(30);
      sim.spawn(fs::run_ost_interference(sim, tb.lustre(),
                                         config.interference,
                                         rep_rng.fork("interference"),
                                         horizon));
    }

    TimePoint workload_end;
    sim.spawn(run_all_and_mark(sim, std::move(tasks), workload_end));
    const std::uint64_t events_fired = sim.run_to_quiescence();

    // --- Per-repetition aggregation ------------------------------------
    double pm = 0, pi = 0, cm = 0, ci = 0;
    for (std::uint32_t pair = 0; pair < config.pairs; ++pair) {
      const auto& pt = prod_recs[pair]->tree();
      const auto& ct = cons_recs[pair]->tree();
      pm += per_frame_us(pt, "produce", perf::Category::kMovement,
                         config.workload.frames);
      pi += per_frame_us(pt, "produce", perf::Category::kIdle,
                         config.workload.frames);
      cm += per_frame_us(ct, "consume", perf::Category::kMovement,
                         config.workload.frames);
      ci += per_frame_us(ct, "consume", perf::Category::kIdle,
                         config.workload.frames);

      perf::Metadata meta{
          {"solution", std::string(to_string(config.solution))},
          {"rep", std::to_string(rep)},
          {"pair", std::to_string(pair)},
          {"pairs", std::to_string(config.pairs)},
          {"nodes", std::to_string(config.nodes)},
          {"model", std::string(config.workload.model.name)},
          {"stride", std::to_string(config.workload.stride)},
      };
      meta["role"] = "producer";
      result.thicket.add(meta, prod_recs[pair]->snapshot());
      meta["role"] = "consumer";
      result.thicket.add(meta, cons_recs[pair]->snapshot());

      if (config.solution == Solution::kDyad) {
        const auto& dc =
            static_cast<const DyadConnector&>(*cons_conn[pair]).consumer();
        result.counters.add("dyad_warm_hits", dc.warm_hits());
        result.counters.add("dyad_kvs_waits", dc.kvs_waits());
        result.counters.add("dyad_kvs_retries", dc.kvs_retries());
        result.counters.add("dyad_recovery_retries", dc.recovery_retries());
        result.counters.add("dyad_failovers", dc.failovers());
      }
    }
    if (config.solution == Solution::kDyad) {
      for (std::uint32_t n = 0; n < config.nodes; ++n) {
        result.counters.add("dyad_republishes",
                            tb.node(n).dyad->republishes());
      }
    }
    result.counters.add("kvs_commits", tb.kvs().commits());
    result.counters.add("kvs_lookups", tb.kvs().lookups());
    for (std::uint32_t n = 0; n < config.nodes; ++n) {
      result.counters.add("cache_hits", tb.node(n).cache->hits());
      result.counters.add("cache_misses", tb.node(n).cache->misses());
    }
    if (tb.fault_injector() != nullptr) {
      result.counters.add("fault_windows_applied",
                          tb.fault_injector()->windows_applied());
    }
    result.counters.add("sim_events", events_fired);
    const auto npairs = static_cast<double>(config.pairs);
    result.prod_movement_us.add(pm / npairs);
    result.prod_idle_us.add(pi / npairs);
    result.cons_movement_us.add(cm / npairs);
    result.cons_idle_us.add(ci / npairs);
    result.makespan_s.add((workload_end - TimePoint::origin()).to_seconds());
  }

  if (tracing) {
    result.counters.set("trace_events", trace_sink.event_count());
    trace_sink.write(config.trace_path);
  }

  return result;
}

}  // namespace mdwf::workflow
