#include "mdwf/workflow/ensemble.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "mdwf/common/assert.hpp"
#include "mdwf/common/fence.hpp"
#include "mdwf/workflow/dag_run.hpp"

namespace mdwf::workflow {

std::string frame_path(std::uint32_t pair, std::uint64_t f) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "pair%04u/frame%05llu", pair,
                static_cast<unsigned long long>(f));
  return buf;
}

std::string pair_prefix(std::uint32_t pair) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "pair%04u/", pair);
  return buf;
}

namespace {

// Frame-boundary timeline marker ("f=<n>") on the rank's trace lane.  The
// frame number rides as the record payload; the name materializes at export.
void trace_frame(const RankContext& ctx, std::uint64_t f) {
  if (ctx.trace == nullptr) return;
  ctx.trace->instant(ctx.frame_marker, ctx.sim->now(),
                     static_cast<std::int64_t>(f));
}

std::uint64_t rank_epoch(const RankContext& ctx) {
  return ctx.crash != nullptr ? ctx.crash->epoch(ctx.node) : 0;
}

// Fail-slow CPU: compute bursts stretch by the injector's current dilation
// for this rank's node (kSlowNode windows; x1.0 outside them).
double cpu_dilation(const RankContext& ctx) {
  return ctx.injector != nullptr ? ctx.injector->cpu_dilation(ctx.node) : 1.0;
}

// Rank restart after its node failed underneath it.  Without a membership
// plane: park until power-on, then roll back to the last durable
// checkpoint.  With one: ask the plane whether the node recovers or is
// declared lost — a rank whose home was declared re-homes onto a surviving
// node, rolls back to the pair-min of both ranks' durable records (the
// coordinated rollback that re-produces everything the surviving peer
// still needs), and rebinds its node-local resources there.  Returns the
// frame to resume from; may change ctx.node/connector on migration.
sim::Task<std::uint64_t> crash_restart(RankContext& ctx) {
  std::uint32_t target = ctx.node;
  {
    perf::ScopedRegion down(*ctx.recorder, "crash_restart",
                            perf::Category::kIdle);
    if (ctx.membership != nullptr) {
      target =
          co_await ctx.membership->wait_recover_or_migrate(ctx.member_rank);
    } else {
      co_await ctx.crash->wait_up(ctx.node);
    }
  }
  if (ctx.stats != nullptr) ++ctx.stats->crash_recoveries;
  if (target != ctx.node) {
    std::uint64_t restart = 0;
    if (ctx.checkpoint != nullptr) {
      restart = ctx.checkpoint->durable();
      if (ctx.peer_checkpoint != nullptr) {
        restart = std::min(restart, ctx.peer_checkpoint->durable());
      }
    }
    if (ctx.rebuild) ctx.connector = ctx.rebuild(target, restart);
    ctx.node = target;
  }
  co_return ctx.checkpoint != nullptr ? ctx.checkpoint->restore() : 0;
}

// Backoff-or-park decision for a retry loop whose peer's node is down.
// Without a plane, a peer on a permanently-lost node can never re-supply
// (or consume) frames: park on its up-event — which never fires — so the
// run quiesces into the deadlock reporter instead of polling forever.
// With a plane the peer migrates and re-supplies, so keep polling.
bool park_on_lost_peer(const RankContext& ctx) {
  return ctx.membership == nullptr && ctx.injector != nullptr &&
         ctx.crash != nullptr && ctx.crash->down(ctx.peer_node) &&
         ctx.injector->node_lost(ctx.peer_node);
}

// Account a finished frame iteration: distinct progress vs post-rollback
// re-execution.
void count_frame(RankStats* stats, std::uint64_t f, std::uint64_t& high) {
  if (f < high) {
    if (stats != nullptr) ++stats->reexecuted;
  } else {
    high = f + 1;
    if (stats != nullptr) ++stats->frames_done;
  }
}

// Frames below a restored checkpoint are durably complete; credit the ones
// not yet counted (a crash can land between persist(f+1) and count_frame,
// rolling the rank *forward* past an uncounted frame).
void credit_restored(RankStats* stats, std::uint64_t restored,
                     std::uint64_t& high) {
  if (restored <= high) return;
  if (stats != nullptr) stats->frames_done += restored - high;
  high = restored;
}

// Backoff between same-frame retries when a *remote* fault (crashed peer,
// torn fabric) failed the frame but this rank's node kept its state.
constexpr Duration kFaultRetryBackoff = Duration::milliseconds(50);
// Hard cap so an unrecoverable configuration surfaces as the original error
// instead of an endless poll loop.
constexpr std::uint64_t kMaxFaultRetries = 10'000;

}  // namespace

sim::Task<void> run_producer(RankContext ctx) {
  auto& sim = *ctx.sim;
  auto& recorder = *ctx.recorder;
  const WorkloadConfig& workload = ctx.workload;
  const Bytes wire_bytes = workload.wire_bytes();
  if (workload.start_stagger > 0.0) {
    // Launch/equilibration phase offset; desynchronizes ensemble members.
    co_await sim.delay(workload.frame_compute() *
                       (workload.start_stagger * ctx.rng.next_double()));
  }
  std::uint64_t completed_high = 0;
  std::uint64_t f = 0;
  while (f < workload.frames) {
    const std::uint64_t frame_epoch = rank_epoch(ctx);
    if (ctx.pacing != nullptr) {
      // SLO-guard throttle: under contention the guard staggers production
      // so the tenant's consumer (and its neighbors) can catch up.
      const Duration hold = ctx.pacing->producer_delay(f);
      if (hold > Duration::zero()) {
        perf::ScopedRegion pace(recorder, "slo_stagger",
                                perf::Category::kIdle);
        co_await sim.delay(hold);
      }
    }
    {
      // MD steps between output frames; jitter models run-to-run rate
      // variability of a real simulation.  Re-executed frames redo the full
      // stride: the crash lost the in-memory MD state past the checkpoint.
      perf::ScopedRegion compute(recorder, "md_compute",
                                 perf::Category::kCompute);
      const double jitter =
          std::max(-0.5, ctx.rng.normal(0.0, workload.step_jitter_sigma));
      co_await sim.delay(workload.frame_compute() *
                         ((1.0 + jitter) * cpu_dilation(ctx)));
    }
    {
      perf::ScopedRegion ser(recorder, "serialize", perf::Category::kCompute);
      co_await sim.delay(workload.serialize_time() * cpu_dilation(ctx));
    }
    if (workload.compress) {
      perf::ScopedRegion comp(recorder, "compress", perf::Category::kCompute);
      co_await sim.delay(workload.compress_time() * cpu_dilation(ctx));
    }
    bool fenced = false;
    for (std::uint64_t attempts = 0;; ++attempts) {
      std::exception_ptr failure;
      try {
        perf::ScopedRegion produce(recorder, "produce");
        co_await ctx.connector->put(ctx.ns + frame_path(ctx.pair, f),
                                    wire_bytes, f);
        if (ctx.publish_times != nullptr) (*ctx.publish_times)[f] = sim.now();
        if (ctx.checkpoint != nullptr) co_await ctx.checkpoint->persist(f + 1);
      } catch (const net::NetError&) {
        failure = std::current_exception();
      } catch (const storage::IoError&) {
        failure = std::current_exception();
      } catch (const fs::FsError&) {
        failure = std::current_exception();
      } catch (const StaleEpochError&) {
        // This node was declared lost while its ranks kept running (a
        // zombie cut off by a one-way partition): the first post-heal
        // server round trip fenced the old incarnation.  Terminal for this
        // incarnation — fall into the migration path below.
        if (ctx.membership == nullptr) throw;
        fenced = true;
      }
      if (fenced || failure == nullptr) break;
      // Without a crash model a faulted put is fatal, exactly as before.
      if (ctx.crash == nullptr || attempts >= kMaxFaultRetries) {
        std::rethrow_exception(failure);
      }
      if (rank_epoch(ctx) != frame_epoch) break;  // our node died: see below
      if (ctx.stats != nullptr) ++ctx.stats->fault_retries;
      perf::ScopedRegion wait(recorder, "fault_retry", perf::Category::kIdle);
      if (park_on_lost_peer(ctx)) {
        co_await ctx.crash->wait_up(ctx.peer_node);
      } else {
        co_await sim.delay(kFaultRetryBackoff);
      }
    }
    if (fenced || (ctx.crash != nullptr && rank_epoch(ctx) != frame_epoch)) {
      f = co_await crash_restart(ctx);
      credit_restored(ctx.stats, f, completed_high);
      continue;
    }
    trace_frame(ctx, f);
    co_await ctx.connector->producer_sync(f);
    if (ctx.crash != nullptr && rank_epoch(ctx) != frame_epoch) {
      // Node failed while parked in producer_sync (consumer acks arrive
      // from a live node); the put was already durable iff the checkpoint
      // says so.
      f = co_await crash_restart(ctx);
      credit_restored(ctx.stats, f, completed_high);
      continue;
    }
    count_frame(ctx.stats, f, completed_high);
    if (ctx.pacing != nullptr) ctx.pacing->on_frame_produced(f);
    ++f;
  }
  if (ctx.membership != nullptr) ctx.membership->rank_done();
}

sim::Task<void> run_consumer(RankContext ctx) {
  auto& sim = *ctx.sim;
  auto& recorder = *ctx.recorder;
  const WorkloadConfig& workload = ctx.workload;
  const Bytes wire_bytes = workload.wire_bytes();
  std::uint64_t completed_high = 0;
  std::uint64_t f = 0;
  while (f < workload.frames) {
    const std::uint64_t frame_epoch = rank_epoch(ctx);
    const TimePoint fetch_start = sim.now();
    bool fenced = false;
    for (std::uint64_t attempts = 0;; ++attempts) {
      std::exception_ptr failure;
      try {
        perf::ScopedRegion consume(recorder, "consume");
        co_await ctx.connector->get(ctx.ns + frame_path(ctx.pair, f),
                                    wire_bytes, f);
      } catch (const net::NetError&) {
        failure = std::current_exception();
      } catch (const storage::IoError&) {
        failure = std::current_exception();
      } catch (const fs::FsError&) {
        failure = std::current_exception();
      } catch (const StaleEpochError&) {
        // Declared lost mid-run (zombie consumer); migrate below.
        if (ctx.membership == nullptr) throw;
        fenced = true;
      }
      if (fenced) break;
      if (failure == nullptr) {
        // Frame-fetch latency — from the frame being both requested and
        // available (see RankContext::publish_times) to the bytes landing,
        // including any retries/hedging below the connector; its P99 is the
        // gray-failure headline metric.  A hedge can finish off the Lustre
        // replica before the producer's own put() returns; the stamp is
        // then still missing and the latency-from-availability is
        // unmeasurable, so that (certainly-not-slow) fetch is skipped.
        if (ctx.fetch_samples != nullptr || ctx.pacing != nullptr) {
          TimePoint avail = fetch_start;
          bool stamped = true;
          if (ctx.publish_times != nullptr) {
            const TimePoint pub = (*ctx.publish_times)[f];
            stamped = pub != TimePoint::origin();
            avail = std::max(avail, pub);
          }
          if (stamped) {
            const double latency_us = (sim.now() - avail).to_micros();
            if (ctx.fetch_samples != nullptr) {
              ctx.fetch_samples->add(latency_us);
            }
            if (ctx.pacing != nullptr) {
              ctx.pacing->on_fetch(sim.now(), latency_us);
            }
          }
        }
        break;
      }
      if (ctx.crash == nullptr || attempts >= kMaxFaultRetries) {
        std::rethrow_exception(failure);
      }
      if (rank_epoch(ctx) != frame_epoch) break;
      // Producer side is crashed or re-executing: poll until the frame
      // (re)appears.
      if (ctx.stats != nullptr) ++ctx.stats->fault_retries;
      perf::ScopedRegion wait(recorder, "fault_retry", perf::Category::kIdle);
      if (park_on_lost_peer(ctx)) {
        co_await ctx.crash->wait_up(ctx.peer_node);
      } else {
        co_await sim.delay(kFaultRetryBackoff);
      }
    }
    if (fenced || (ctx.crash != nullptr && rank_epoch(ctx) != frame_epoch)) {
      f = co_await crash_restart(ctx);
      credit_restored(ctx.stats, f, completed_high);
      continue;
    }
    trace_frame(ctx, f);
    if (workload.compress) {
      perf::ScopedRegion dec(recorder, "decompress",
                             perf::Category::kCompute);
      co_await sim.delay(workload.decompress_time() * cpu_dilation(ctx));
    }
    {
      perf::ScopedRegion des(recorder, "deserialize",
                             perf::Category::kCompute);
      co_await sim.delay(workload.serialize_time() * cpu_dilation(ctx));
    }
    {
      // Analytics emulation matches the frame-generation frequency
      // (paper Sec. IV-C); analytics_scale > 1 models a consumer that
      // cannot keep pace.
      perf::ScopedRegion ana(recorder, "analytics", perf::Category::kCompute);
      co_await sim.delay(workload.analytics_time() * cpu_dilation(ctx));
    }
    ctx.connector->acknowledge(f);
    if (ctx.checkpoint != nullptr) co_await ctx.checkpoint->persist(f + 1);
    if (ctx.crash != nullptr && rank_epoch(ctx) != frame_epoch) {
      // Crash during analytics/ack/persist: the analytics output since the
      // last durable record is gone; re-consume from there.
      f = co_await crash_restart(ctx);
      credit_restored(ctx.stats, f, completed_high);
      continue;
    }
    count_frame(ctx.stats, f, completed_high);
    if (ctx.pacing != nullptr) ctx.pacing->on_frame_consumed(f);
    ++f;
  }
  if (ctx.membership != nullptr) ctx.membership->rank_done();
}

namespace {

sim::Task<void> run_all_and_mark(sim::Simulation& sim,
                                 std::vector<sim::Task<void>> tasks,
                                 TimePoint& end) {
  co_await sim::all(sim, std::move(tasks));
  end = sim.now();
}

// Per-frame mean of a category inside a region subtree, in microseconds.
double per_frame_us(const perf::CallTree& tree, std::string_view subtree,
                    perf::Category cat, std::uint64_t frames) {
  return tree.category_time(subtree, cat).to_micros() /
         static_cast<double>(frames);
}

// Registration order of every counter — the stable column order of tables
// and CSVs across solutions and fault plans (zero when a path never fired).
constexpr const char* kCounterNames[] = {
    "dyad_warm_hits", "dyad_kvs_waits", "dyad_kvs_retries",
    "dyad_recovery_retries", "dyad_failovers", "dyad_republishes",
    "dyad_hedges", "dyad_hedge_wins", "dyad_hedge_cancels",
    "dyad_breaker_trips", "dyad_breaker_fast_fails", "dyad_busy_retries",
    "stream_puts", "stream_staged_hits", "stream_spills",
    "stream_spill_reads", "stream_replays", "stream_dup_drops",
    "stream_crash_drops", "stream_credit_waits",
    "stream_backpressure_stalls", "stream_hedges", "stream_hedge_wins",
    "kvs_sheds", "lustre_sheds", "lustre_busy_retries",
    "net_retransmit_timeouts", "frames_produced", "frames_consumed",
    "frames_reexecuted", "fault_retries", "crash_recoveries",
    "crash_windows", "checkpoint_persists", "checkpoint_restores",
    "torn_writes", "lost_dirty_pages", "integrity_verified",
    "integrity_failures", "integrity_refetches", "integrity_unrecovered",
    "kvs_commits", "kvs_lookups", "cache_hits", "cache_misses",
    "fault_windows_applied", "sim_events", "trace_events",
    // Membership plane (PR 9); appended so earlier column orders survive.
    "membership_declares", "rank_migrations", "stale_epoch_rejects",
    "declare_latency_us", "frames_lost"};

}  // namespace

void register_ensemble_counters(obs::CounterMap& counters) {
  for (const char* name : kCounterNames) counters.add(name, 0);
}

EnsembleResult make_ensemble_result() {
  EnsembleResult result;
  register_ensemble_counters(result.counters);
  return result;
}

void build_rank_set(Testbed& tb, const RankSetSpec& spec, const Rng& set_rng,
                    fault::CrashMonitor* crash, Samples* fetch_samples,
                    RankSetAssets& assets) {
  MDWF_ASSERT(spec.pairs >= 1);
  const bool colocated =
      spec.nodes == 1 || spec.placement == Placement::kColocated;
  MDWF_ASSERT_MSG(colocated || spec.nodes % 2 == 0,
                  "split multi-node ensembles need an even node count");
  MDWF_ASSERT_MSG(spec.solution != Solution::kXfs || colocated,
                  "XFS cannot move data between nodes (paper Sec. III-B)");
  MDWF_ASSERT_MSG(spec.node_base + spec.nodes <= tb.compute_nodes(),
                  "rank set extends past the testbed's compute nodes");

  auto& sim = tb.simulation();
  obs::TraceSink* sink = tb.params().trace;

  const std::uint32_t producer_nodes =
      colocated ? spec.nodes : spec.nodes / 2;
  const std::uint32_t ranks_per_node =
      (spec.pairs + producer_nodes - 1) / producer_nodes;

  auto producer_node = [&](std::uint32_t pair) {
    return spec.node_base + pair / ranks_per_node;
  };
  auto consumer_node = [&](std::uint32_t pair) {
    return colocated
               ? spec.node_base + pair / ranks_per_node
               : spec.node_base + producer_nodes + pair / ranks_per_node;
  };
  auto trace_process = [&](std::uint32_t node) {
    return spec.trace_process.empty()
               ? "node" + std::to_string(node)
               : spec.trace_process + "/node" + std::to_string(node);
  };

  const bool ckpt_on = spec.checkpoint.resolve_enabled(spec.crash_aware);
  assets.stats.assign(2 * spec.pairs, RankStats{});

  // Migration rebinder: retire the old connector (frames in flight may
  // still unwind through it), build the solution's standard connector on
  // the new home, renew the pair's push-mode/stream subscription from
  // there, and re-home the progress record with the pair-min rollback.
  auto make_rebuild = [&tb, &assets, solution = spec.solution, ns = spec.ns,
                       factory = spec.connectors](
                          std::uint32_t pair, bool consumer,
                          ExplicitSync* sync, perf::Recorder* rec,
                          Checkpoint* ckpt) {
    return [&tb, &assets, solution, ns, factory, pair, consumer, sync, rec,
            ckpt](std::uint32_t node, std::uint64_t restart) -> Connector* {
      auto& slot = consumer ? assets.cons_conn[pair] : assets.prod_conn[pair];
      assets.retired_conn.push_back({pair, consumer, std::move(slot)});
      const ConnectorSpec cs{.testbed = &tb,
                             .solution = solution,
                             .node = node,
                             .sync = sync,
                             .recorder = rec};
      slot = factory ? factory(cs, pair, consumer) : make_connector(cs);
      if (consumer && solution == Solution::kDyad &&
          tb.params().dyad.push_mode) {
        tb.dyad_domain().subscribe(ns + pair_prefix(pair), net::NodeId{node});
      }
      if (consumer && solution == Solution::kStream) {
        tb.stream_domain().subscribe(ns + pair_prefix(pair),
                                     net::NodeId{node});
      }
      if (ckpt != nullptr) {
        ckpt->migrate(*tb.node(node).local_fs, node, restart);
      }
      return slot.get();
    };
  };

  for (std::uint32_t pair = 0; pair < spec.pairs; ++pair) {
    assets.prod_recs.push_back(std::make_unique<perf::Recorder>(
        sim, "producer" + std::to_string(pair)));
    assets.cons_recs.push_back(std::make_unique<perf::Recorder>(
        sim, "consumer" + std::to_string(pair)));
    auto& prec = *assets.prod_recs.back();
    auto& crec = *assets.cons_recs.back();
    const std::uint32_t pnode = producer_node(pair);
    const std::uint32_t cnode = consumer_node(pair);

    ExplicitSync* sync = nullptr;
    if (spec.solution == Solution::kXfs ||
        spec.solution == Solution::kLustre) {
      assets.syncs.push_back(std::make_unique<ExplicitSync>(sim));
      sync = assets.syncs.back().get();
    }
    // XFS is colocated by construction: both ranks share pnode's local FS.
    const std::uint32_t cnode_eff =
        spec.solution == Solution::kXfs ? pnode : cnode;
    const ConnectorSpec pconn{.testbed = &tb,
                              .solution = spec.solution,
                              .node = pnode,
                              .sync = sync,
                              .recorder = &prec};
    const ConnectorSpec cconn{.testbed = &tb,
                              .solution = spec.solution,
                              .node = cnode_eff,
                              .sync = sync,
                              .recorder = &crec};
    assets.prod_conn.push_back(spec.connectors
                                   ? spec.connectors(pconn, pair, false)
                                   : make_connector(pconn));
    assets.cons_conn.push_back(spec.connectors
                                   ? spec.connectors(cconn, pair, true)
                                   : make_connector(cconn));
    if (spec.solution == Solution::kDyad && tb.params().dyad.push_mode) {
      tb.dyad_domain().subscribe(spec.ns + pair_prefix(pair),
                                 net::NodeId{cnode});
    }
    if (spec.solution == Solution::kStream) {
      // Static route: the scheduler knows the placement, so first frames
      // skip the KVS cold-start handshake (which stays as the fallback
      // for routes learned at runtime, exercised by the unit tests).
      tb.stream_domain().subscribe(spec.ns + pair_prefix(pair),
                                   net::NodeId{cnode});
    }

    Checkpoint* pckpt = nullptr;
    Checkpoint* cckpt = nullptr;
    if (ckpt_on) {
      assets.ckpts.push_back(std::make_unique<Checkpoint>(
          sim, *tb.node(pnode).local_fs,
          spec.ns + "ckpt/producer" + std::to_string(pair), spec.checkpoint,
          crash, pnode));
      pckpt = assets.ckpts.back().get();
      assets.ckpts.push_back(std::make_unique<Checkpoint>(
          sim, *tb.node(cnode_eff).local_fs,
          spec.ns + "ckpt/consumer" + std::to_string(pair), spec.checkpoint,
          crash, cnode_eff));
      cckpt = assets.ckpts.back().get();
    }

    RankContext pctx{
        .sim = &sim,
        .connector = assets.prod_conn.back().get(),
        .recorder = &prec,
        .workload = spec.workload,
        .pair = pair,
        .ns = spec.ns,
        .pacing = spec.pacing,
        .rng = set_rng.fork(spec.rng_scope + "pair" + std::to_string(pair)),
        .node = pnode,
        .crash = crash,
        .checkpoint = pckpt,
        .stats = &assets.stats[2 * pair]};
    RankContext cctx{.sim = &sim,
                     .connector = assets.cons_conn.back().get(),
                     .recorder = &crec,
                     .workload = spec.workload,
                     .pair = pair,
                     .ns = spec.ns,
                     .pacing = spec.pacing,
                     .node = cnode_eff,
                     .crash = crash,
                     .checkpoint = cckpt,
                     .stats = &assets.stats[2 * pair + 1]};
    pctx.injector = cctx.injector = tb.fault_injector();
    pctx.peer_node = cnode_eff;
    cctx.peer_node = pnode;
    pctx.peer_checkpoint = cckpt;
    cctx.peer_checkpoint = pckpt;
    if (auto* plane = tb.membership()) {
      pctx.membership = cctx.membership = plane;
      pctx.member_rank = plane->register_rank(pnode);
      cctx.member_rank = plane->register_rank(cnode_eff);
      pctx.peer_member_rank = cctx.member_rank;
      cctx.peer_member_rank = pctx.member_rank;
      if (spec.solution == Solution::kXfs) {
        // An XFS pair shares one local filesystem; split homes would
        // orphan every frame, so the pair migrates as a unit.
        plane->bind_colocated(pctx.member_rank, cctx.member_rank);
      }
      pctx.rebuild =
          make_rebuild(pair, /*consumer=*/false, sync, &prec, pckpt);
      cctx.rebuild = make_rebuild(pair, /*consumer=*/true, sync, &crec, cckpt);
    }
    cctx.fetch_samples = fetch_samples;
    assets.pub_times.push_back(std::make_unique<std::vector<TimePoint>>(
        spec.workload.frames, TimePoint::origin()));
    pctx.publish_times = cctx.publish_times = assets.pub_times.back().get();
    if (sink != nullptr) {
      // One trace lane per rank, on the process of the node it runs on.
      pctx.trace = cctx.trace = sink;
      pctx.track = sink->track(trace_process(pnode),
                               "producer" + std::to_string(pair));
      cctx.track = sink->track(trace_process(cnode),
                               "consumer" + std::to_string(pair));
      pctx.frame_marker = sink->instant_series(pctx.track, "f=");
      cctx.frame_marker = sink->instant_series(cctx.track, "f=");
      prec.set_trace(sink, pctx.track);
      crec.set_trace(sink, cctx.track);
    }
    assets.tasks.push_back(run_producer(pctx));
    assets.tasks.push_back(run_consumer(cctx));
  }
}

void collect_rank_set(Testbed& tb, const RankSetSpec& spec,
                      RankSetAssets& assets, std::uint32_t rep,
                      const perf::Metadata& meta_extra, RepOutcome& out) {
  double pm = 0, pi = 0, cm = 0, ci = 0;
  for (std::uint32_t pair = 0; pair < spec.pairs; ++pair) {
    const auto& pt = assets.prod_recs[pair]->tree();
    const auto& ct = assets.cons_recs[pair]->tree();
    pm += per_frame_us(pt, "produce", perf::Category::kMovement,
                       spec.workload.frames);
    pi += per_frame_us(pt, "produce", perf::Category::kIdle,
                       spec.workload.frames);
    cm += per_frame_us(ct, "consume", perf::Category::kMovement,
                       spec.workload.frames);
    ci += per_frame_us(ct, "consume", perf::Category::kIdle,
                       spec.workload.frames);

    perf::Metadata meta{
        {"solution", std::string(to_string(spec.solution))},
        {"rep", std::to_string(rep)},
        {"pair", std::to_string(pair)},
        {"pairs", std::to_string(spec.pairs)},
        {"nodes", std::to_string(spec.nodes)},
        {"model", std::string(spec.workload.model.name)},
        {"stride", std::to_string(spec.workload.stride)},
    };
    for (const auto& [key, value] : meta_extra) meta[key] = value;
    meta["role"] = "producer";
    out.thicket.add(meta, assets.prod_recs[pair]->snapshot());
    meta["role"] = "consumer";
    out.thicket.add(meta, assets.cons_recs[pair]->snapshot());

    if (spec.solution == Solution::kDyad) {
      // A migrated consumer's pre-migration counters live on its retired
      // connector; fold every incarnation of this pair's consumer.
      auto fold = [&out](const Connector& c) {
        const auto& dc =
            static_cast<const DyadConnector&>(c.stats_target()).consumer();
        out.counters.add("dyad_warm_hits", dc.warm_hits());
        out.counters.add("dyad_kvs_waits", dc.kvs_waits());
        out.counters.add("dyad_kvs_retries", dc.kvs_retries());
        out.counters.add("dyad_recovery_retries", dc.recovery_retries());
        out.counters.add("dyad_failovers", dc.failovers());
      };
      fold(*assets.cons_conn[pair]);
      for (const auto& r : assets.retired_conn) {
        if (r.pair == pair && r.consumer) fold(*r.conn);
      }
    }
  }
  const std::uint32_t node_end = spec.node_base + spec.nodes;
  if (spec.solution == Solution::kDyad) {
    for (std::uint32_t n = spec.node_base; n < node_end; ++n) {
      out.counters.add("dyad_republishes", tb.node(n).dyad->republishes());
      const auto& hs = tb.node(n).dyad->health_state();
      out.counters.add("dyad_hedges", hs.hedges);
      out.counters.add("dyad_hedge_wins", hs.hedge_wins);
      out.counters.add("dyad_hedge_cancels", hs.hedge_cancels);
      out.counters.add("dyad_breaker_trips", hs.breaker.trips());
      out.counters.add("dyad_breaker_fast_fails", hs.breaker_fast_fails);
      out.counters.add("dyad_busy_retries", hs.busy_retries);
    }
  }
  if (spec.solution == Solution::kStream) {
    for (std::uint32_t n = spec.node_base; n < node_end; ++n) {
      const auto& sn = *tb.node(n).stream;
      out.counters.add("stream_puts", sn.puts());
      out.counters.add("stream_staged_hits", sn.staged_hits());
      out.counters.add("stream_spills", sn.spills());
      out.counters.add("stream_spill_reads", sn.spill_reads());
      out.counters.add("stream_replays", sn.replays());
      out.counters.add("stream_dup_drops", sn.dup_drops());
      out.counters.add("stream_crash_drops", sn.crash_drops());
      out.counters.add("stream_credit_waits", sn.credit_waits());
      out.counters.add("stream_backpressure_stalls",
                       sn.backpressure_stalls());
      out.counters.add("stream_hedges", sn.hedges());
      out.counters.add("stream_hedge_wins", sn.hedge_wins());
    }
  }
  for (std::uint32_t pair = 0; pair < spec.pairs; ++pair) {
    out.counters.add("frames_produced", assets.stats[2 * pair].frames_done);
    out.counters.add("frames_consumed",
                     assets.stats[2 * pair + 1].frames_done);
    out.counters.add("frames_reexecuted",
                     assets.stats[2 * pair].reexecuted +
                         assets.stats[2 * pair + 1].reexecuted);
    out.counters.add("fault_retries",
                     assets.stats[2 * pair].fault_retries +
                         assets.stats[2 * pair + 1].fault_retries);
    out.counters.add("crash_recoveries",
                     assets.stats[2 * pair].crash_recoveries +
                         assets.stats[2 * pair + 1].crash_recoveries);
    // Zero-data-loss acceptance metric: frames the consumer never
    // completed.  0 on every run that finished; nonzero only if a run was
    // collected after losing frames for good.
    const std::uint64_t consumed = assets.stats[2 * pair + 1].frames_done;
    out.counters.add("frames_lost", consumed < spec.workload.frames
                                        ? spec.workload.frames - consumed
                                        : 0);
  }
  for (const auto& ckpt : assets.ckpts) {
    out.counters.add("checkpoint_persists", ckpt->persists());
    out.counters.add("checkpoint_restores", ckpt->restores());
  }
  for (std::uint32_t n = spec.node_base; n < node_end; ++n) {
    out.counters.add("torn_writes", tb.node(n).local_fs->torn_files());
    out.counters.add("lost_dirty_pages", tb.node(n).cache->dirty_dropped());
    out.counters.add("cache_hits", tb.node(n).cache->hits());
    out.counters.add("cache_misses", tb.node(n).cache->misses());
  }
  const auto npairs = static_cast<double>(spec.pairs);
  out.prod_movement_us = pm / npairs;
  out.prod_idle_us = pi / npairs;
  out.cons_movement_us = cm / npairs;
  out.cons_idle_us = ci / npairs;
}

void collect_shared(Testbed& tb, std::uint64_t events_fired,
                    RepOutcome& out) {
  if (auto* injector = tb.fault_injector()) {
    if (injector->has_crash_windows()) {
      out.counters.add("crash_windows", injector->monitor().crashes());
    }
    out.counters.add("fault_windows_applied", injector->windows_applied());
  }
  out.counters.add("torn_writes", tb.lustre().torn_writes());
  if (auto* ledger = tb.integrity_ledger()) {
    out.counters.add("integrity_verified", ledger->verified());
    out.counters.add("integrity_failures", ledger->failures());
    out.counters.add("integrity_refetches", ledger->refetches());
    out.counters.add("integrity_unrecovered", ledger->unrecovered());
  }
  out.counters.add("kvs_commits", tb.kvs().commits());
  out.counters.add("kvs_lookups", tb.kvs().lookups());
  out.counters.add("kvs_sheds", tb.kvs().sheds());
  out.counters.add("lustre_sheds", tb.lustre().sheds());
  out.counters.add("lustre_busy_retries", tb.lustre().busy_retries());
  out.counters.add("net_retransmit_timeouts",
                   tb.network().retransmit_timeouts());
  out.counters.add("sim_events", events_fired);
  if (auto* plane = tb.membership()) {
    out.counters.add("membership_declares", plane->declares());
    out.counters.add("rank_migrations", plane->migrations());
    out.counters.add("declare_latency_us",
                     static_cast<std::uint64_t>(
                         plane->declare_latency().to_micros()));
    out.counters.add("stale_epoch_rejects", tb.fences()->stale_rejects());
  }
}

RepOutcome run_repetition(const EnsembleConfig& config, std::uint32_t rep,
                          obs::TraceSink* trace) {
  // DAG workloads take the dependency-driven executor; the classic fixed
  // pipeline below is bit-for-bit the pre-DAG code path.
  if (config.dag != nullptr) return run_dag_repetition(config, rep, trace);
  MDWF_ASSERT(config.pairs >= 1);
  const bool colocated =
      config.nodes == 1 || config.placement == Placement::kColocated;
  MDWF_ASSERT_MSG(colocated || config.nodes % 2 == 0,
                  "split multi-node ensembles need an even node count");
  MDWF_ASSERT_MSG(config.solution != Solution::kXfs || colocated,
                  "XFS cannot move data between nodes (paper Sec. III-B)");

  RepOutcome out;
  register_ensemble_counters(out.counters);

  {
    TestbedParams tp = config.testbed;
    tp.compute_nodes = config.nodes;
    // Each repetition draws an independent corruption history (same prime
    // stride scheme as the workload seeds: deterministic, non-overlapping).
    tp.integrity.seed = config.base_seed + rep * 7919;
    tp.trace = trace;

    // Declared before the testbed: if a repetition throws (e.g. deadlock),
    // the testbed must unwind first — destroying the simulation destroys the
    // blocked coroutines, whose scoped regions close against the recorders,
    // so everything the coroutine frames touch has to outlive `tb`.
    RankSetAssets assets;

    Testbed tb(tp);
    auto& sim = tb.simulation();

    // Crash/restart model: crash windows in the plan switch the rank loops
    // to their crash-aware form and (by default) enable checkpointing.
    fault::CrashMonitor* crash = nullptr;
    const bool crash_aware = tb.fault_injector() != nullptr &&
                             tb.fault_injector()->has_crash_windows();
    if (crash_aware) crash = &tb.fault_injector()->monitor();

    RankSetSpec spec;
    spec.solution = config.solution;
    spec.pairs = config.pairs;
    spec.node_base = 0;
    spec.nodes = config.nodes;
    spec.placement = config.placement;
    spec.workload = config.workload;
    spec.checkpoint = config.checkpoint;
    spec.crash_aware = crash_aware;

    const Rng rep_rng(config.base_seed + rep);
    build_rank_set(tb, spec, rep_rng, crash, &out.cons_fetch_us, assets);

    if (config.lustre_interference) {
      config.interference.validate();
      // Horizon generously beyond the serialized-workflow makespan.
      const Duration per_frame =
          config.workload.frame_compute() +
          config.workload.analytics_time();
      const TimePoint horizon =
          TimePoint::origin() +
          per_frame * static_cast<std::int64_t>(3 * config.workload.frames) +
          Duration::seconds_i(30);
      sim.spawn(fs::run_ost_interference(sim, tb.lustre(),
                                         config.interference,
                                         rep_rng.fork("interference"),
                                         horizon));
    }

    TimePoint workload_end;
    sim.spawn(run_all_and_mark(sim, std::move(assets.tasks), workload_end));
    const std::uint64_t events_fired = sim.run_to_quiescence();
    // Close trace spans for fault windows still open at simulation end
    // (gray windows often outlive the workload).
    if (tb.fault_injector() != nullptr) tb.fault_injector()->finalize_trace();

    collect_rank_set(tb, spec, assets, rep, {}, out);
    collect_shared(tb, events_fired, out);
    out.makespan_s = (workload_end - TimePoint::origin()).to_seconds();
  }
  return out;
}

void fold_repetition(EnsembleResult& into, RepOutcome rep) {
  into.counters.merge(rep.counters);
  for (double v : rep.cons_fetch_us.values()) into.cons_fetch_us.add(v);
  into.thicket.append(std::move(rep.thicket));
  into.prod_movement_us.add(rep.prod_movement_us);
  into.prod_idle_us.add(rep.prod_idle_us);
  into.cons_movement_us.add(rep.cons_movement_us);
  into.cons_idle_us.add(rep.cons_idle_us);
  into.makespan_s.add(rep.makespan_s);
}

EnsembleResult run_ensemble(const EnsembleConfig& config) {
  EnsembleResult result = make_ensemble_result();
  // Only the first repetition is traced: every rep is an independent
  // simulation starting at t=0, so a combined timeline would interleave
  // unrelated runs.
  obs::TraceSink trace_sink;
  const bool tracing = !config.trace_path.empty();
  for (std::uint32_t rep = 0; rep < config.repetitions; ++rep) {
    fold_repetition(
        result, run_repetition(config, rep,
                               (tracing && rep == 0) ? &trace_sink : nullptr));
  }
  if (tracing) {
    result.counters.set("trace_events", trace_sink.event_count());
    trace_sink.write(config.trace_path);
  }
  return result;
}

}  // namespace mdwf::workflow
