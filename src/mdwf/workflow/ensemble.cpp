#include "mdwf/workflow/ensemble.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "mdwf/common/assert.hpp"

namespace mdwf::workflow {

std::string frame_path(std::uint32_t pair, std::uint64_t f) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "pair%04u/frame%05llu", pair,
                static_cast<unsigned long long>(f));
  return buf;
}

std::string pair_prefix(std::uint32_t pair) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "pair%04u/", pair);
  return buf;
}

std::string_view to_string(Solution s) {
  switch (s) {
    case Solution::kDyad:
      return "DYAD";
    case Solution::kXfs:
      return "XFS";
    case Solution::kLustre:
      return "Lustre";
  }
  return "?";
}

sim::Task<void> run_producer(sim::Simulation& sim, Connector& connector,
                             perf::Recorder& recorder, WorkloadConfig workload,
                             std::uint32_t pair, Rng rng) {
  const Bytes wire_bytes = workload.wire_bytes();
  if (workload.start_stagger > 0.0) {
    // Launch/equilibration phase offset; desynchronizes ensemble members.
    co_await sim.delay(workload.frame_compute() *
                       (workload.start_stagger * rng.next_double()));
  }
  for (std::uint64_t f = 0; f < workload.frames; ++f) {
    {
      // MD steps between output frames; jitter models run-to-run rate
      // variability of a real simulation.
      perf::ScopedRegion compute(recorder, "md_compute",
                                 perf::Category::kCompute);
      const double jitter =
          std::max(-0.5, rng.normal(0.0, workload.step_jitter_sigma));
      co_await sim.delay(workload.frame_compute() * (1.0 + jitter));
    }
    {
      perf::ScopedRegion ser(recorder, "serialize", perf::Category::kCompute);
      co_await sim.delay(workload.serialize_time());
    }
    if (workload.compress) {
      perf::ScopedRegion comp(recorder, "compress", perf::Category::kCompute);
      co_await sim.delay(workload.compress_time());
    }
    {
      perf::ScopedRegion produce(recorder, "produce");
      co_await connector.put(frame_path(pair, f), wire_bytes);
    }
    co_await connector.producer_sync();
  }
}

sim::Task<void> run_consumer(sim::Simulation& sim, Connector& connector,
                             perf::Recorder& recorder, WorkloadConfig workload,
                             std::uint32_t pair) {
  const Bytes wire_bytes = workload.wire_bytes();
  for (std::uint64_t f = 0; f < workload.frames; ++f) {
    {
      perf::ScopedRegion consume(recorder, "consume");
      co_await connector.get(frame_path(pair, f), wire_bytes);
    }
    if (workload.compress) {
      perf::ScopedRegion dec(recorder, "decompress",
                             perf::Category::kCompute);
      co_await sim.delay(workload.decompress_time());
    }
    {
      perf::ScopedRegion des(recorder, "deserialize",
                             perf::Category::kCompute);
      co_await sim.delay(workload.serialize_time());
    }
    {
      // Analytics emulation matches the frame-generation frequency
      // (paper Sec. IV-C).
      perf::ScopedRegion ana(recorder, "analytics", perf::Category::kCompute);
      co_await sim.delay(workload.frame_compute());
    }
    connector.acknowledge();
  }
}

namespace {

sim::Task<void> run_all_and_mark(sim::Simulation& sim,
                                 std::vector<sim::Task<void>> tasks,
                                 TimePoint& end) {
  co_await sim::all(sim, std::move(tasks));
  end = sim.now();
}

// Per-frame mean of a category inside a region subtree, in microseconds.
double per_frame_us(const perf::CallTree& tree, std::string_view subtree,
                    perf::Category cat, std::uint64_t frames) {
  return tree.category_time(subtree, cat).to_micros() /
         static_cast<double>(frames);
}

}  // namespace

EnsembleResult run_ensemble(const EnsembleConfig& config) {
  MDWF_ASSERT(config.pairs >= 1);
  const bool colocated =
      config.nodes == 1 || config.placement == Placement::kColocated;
  MDWF_ASSERT_MSG(colocated || config.nodes % 2 == 0,
                  "split multi-node ensembles need an even node count");
  MDWF_ASSERT_MSG(config.solution != Solution::kXfs || colocated,
                  "XFS cannot move data between nodes (paper Sec. III-B)");

  EnsembleResult result;

  for (std::uint32_t rep = 0; rep < config.repetitions; ++rep) {
    TestbedParams tp = config.testbed;
    tp.compute_nodes = config.nodes;
    Testbed tb(tp);
    auto& sim = tb.simulation();

    const std::uint32_t producer_nodes =
        colocated ? config.nodes : config.nodes / 2;
    const std::uint32_t ranks_per_node =
        (config.pairs + producer_nodes - 1) / producer_nodes;

    auto producer_node = [&](std::uint32_t pair) {
      return pair / ranks_per_node;
    };
    auto consumer_node = [&](std::uint32_t pair) {
      return colocated ? pair / ranks_per_node
                       : producer_nodes + pair / ranks_per_node;
    };

    std::vector<std::unique_ptr<perf::Recorder>> prod_recs;
    std::vector<std::unique_ptr<perf::Recorder>> cons_recs;
    std::vector<std::unique_ptr<ExplicitSync>> syncs;
    std::vector<std::unique_ptr<Connector>> prod_conn;
    std::vector<std::unique_ptr<Connector>> cons_conn;
    std::vector<sim::Task<void>> tasks;

    const Rng rep_rng(config.base_seed + rep);

    for (std::uint32_t pair = 0; pair < config.pairs; ++pair) {
      prod_recs.push_back(std::make_unique<perf::Recorder>(
          sim, "producer" + std::to_string(pair)));
      cons_recs.push_back(std::make_unique<perf::Recorder>(
          sim, "consumer" + std::to_string(pair)));
      auto& prec = *prod_recs.back();
      auto& crec = *cons_recs.back();
      const std::uint32_t pnode = producer_node(pair);
      const std::uint32_t cnode = consumer_node(pair);

      switch (config.solution) {
        case Solution::kDyad:
          prod_conn.push_back(std::make_unique<DyadConnector>(
              *tb.node(pnode).dyad, prec));
          cons_conn.push_back(std::make_unique<DyadConnector>(
              *tb.node(cnode).dyad, crec));
          if (tp.dyad.push_mode) {
            tb.dyad_domain().subscribe(pair_prefix(pair), net::NodeId{cnode});
          }
          break;
        case Solution::kXfs: {
          syncs.push_back(std::make_unique<ExplicitSync>(sim));
          auto& sync = *syncs.back();
          // Colocated by construction: both ranks share pnode's local FS.
          prod_conn.push_back(std::make_unique<XfsConnector>(
              sim, *tb.node(pnode).local_fs, sync, prec));
          cons_conn.push_back(std::make_unique<XfsConnector>(
              sim, *tb.node(pnode).local_fs, sync, crec));
          break;
        }
        case Solution::kLustre: {
          syncs.push_back(std::make_unique<ExplicitSync>(sim));
          auto& sync = *syncs.back();
          prod_conn.push_back(std::make_unique<LustreConnector>(
              sim, tb.lustre(), net::NodeId{pnode}, sync, prec));
          cons_conn.push_back(std::make_unique<LustreConnector>(
              sim, tb.lustre(), net::NodeId{cnode}, sync, crec));
          break;
        }
      }

      tasks.push_back(run_producer(sim, *prod_conn.back(), prec,
                                   config.workload, pair,
                                   rep_rng.fork("pair" + std::to_string(pair))));
      tasks.push_back(
          run_consumer(sim, *cons_conn.back(), crec, config.workload, pair));
    }

    if (config.lustre_interference) {
      // Horizon generously beyond the serialized-workflow makespan.
      const Duration per_frame = config.workload.frame_compute();
      const TimePoint horizon =
          TimePoint::origin() +
          per_frame * static_cast<std::int64_t>(3 * config.workload.frames) +
          Duration::seconds_i(30);
      sim.spawn(fs::run_ost_interference(sim, tb.lustre(),
                                         config.interference,
                                         rep_rng.fork("interference"),
                                         horizon));
    }

    TimePoint workload_end;
    sim.spawn(run_all_and_mark(sim, std::move(tasks), workload_end));
    sim.run_to_quiescence();

    // --- Per-repetition aggregation ------------------------------------
    double pm = 0, pi = 0, cm = 0, ci = 0;
    for (std::uint32_t pair = 0; pair < config.pairs; ++pair) {
      const auto& pt = prod_recs[pair]->tree();
      const auto& ct = cons_recs[pair]->tree();
      pm += per_frame_us(pt, "produce", perf::Category::kMovement,
                         config.workload.frames);
      pi += per_frame_us(pt, "produce", perf::Category::kIdle,
                         config.workload.frames);
      cm += per_frame_us(ct, "consume", perf::Category::kMovement,
                         config.workload.frames);
      ci += per_frame_us(ct, "consume", perf::Category::kIdle,
                         config.workload.frames);

      perf::Metadata meta{
          {"solution", std::string(to_string(config.solution))},
          {"rep", std::to_string(rep)},
          {"pair", std::to_string(pair)},
          {"pairs", std::to_string(config.pairs)},
          {"nodes", std::to_string(config.nodes)},
          {"model", std::string(config.workload.model.name)},
          {"stride", std::to_string(config.workload.stride)},
      };
      meta["role"] = "producer";
      result.thicket.add(meta, prod_recs[pair]->snapshot());
      meta["role"] = "consumer";
      result.thicket.add(meta, cons_recs[pair]->snapshot());

      if (config.solution == Solution::kDyad) {
        const auto& dc =
            static_cast<const DyadConnector&>(*cons_conn[pair]).consumer();
        result.dyad_warm_hits += dc.warm_hits();
        result.dyad_kvs_waits += dc.kvs_waits();
        result.dyad_kvs_retries += dc.kvs_retries();
        result.dyad_recovery_retries += dc.recovery_retries();
        result.dyad_failovers += dc.failovers();
      }
    }
    if (config.solution == Solution::kDyad) {
      for (std::uint32_t n = 0; n < config.nodes; ++n) {
        result.dyad_republishes += tb.node(n).dyad->republishes();
      }
    }
    const auto npairs = static_cast<double>(config.pairs);
    result.prod_movement_us.add(pm / npairs);
    result.prod_idle_us.add(pi / npairs);
    result.cons_movement_us.add(cm / npairs);
    result.cons_idle_us.add(ci / npairs);
    result.makespan_s.add((workload_end - TimePoint::origin()).to_seconds());
  }

  return result;
}

}  // namespace mdwf::workflow
