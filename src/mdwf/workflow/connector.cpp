#include "mdwf/workflow/connector.hpp"

namespace mdwf::workflow {

sim::Task<void> XfsConnector::put(const std::string& path, Bytes size) {
  perf::ScopedRegion write(*rec_, "write", perf::Category::kMovement);
  const fs::InodeId ino = co_await fs_->create(path);
  co_await fs_->write(ino, Bytes::zero(), size);
  write.close();
  sync_->signal_ready();
}

sim::Task<void> XfsConnector::producer_sync() {
  perf::ScopedRegion wait(*rec_, "producer_sync", perf::Category::kIdle);
  co_await sync_->wait_done();
}

sim::Task<void> XfsConnector::get(const std::string& path, Bytes size) {
  {
    perf::ScopedRegion sync(*rec_, "explicit_sync", perf::Category::kIdle);
    co_await sync_->wait_ready();
  }
  perf::ScopedRegion read(*rec_, "FilesystemReader::read_single_buf",
                          perf::Category::kMovement);
  const fs::InodeId ino = co_await fs_->open(path);
  co_await fs_->read(ino, Bytes::zero(), size);
}

sim::Task<void> LustreConnector::put(const std::string& path, Bytes size) {
  perf::ScopedRegion write(*rec_, "write", perf::Category::kMovement);
  const fs::LustreHandle h = co_await client_.create(path);
  co_await client_.write(h, Bytes::zero(), size);
  co_await client_.close(h, /*wrote=*/true);
  write.close();
  sync_->signal_ready();
}

sim::Task<void> LustreConnector::producer_sync() {
  perf::ScopedRegion wait(*rec_, "producer_sync", perf::Category::kIdle);
  co_await sync_->wait_done();
}

sim::Task<void> LustreConnector::get(const std::string& path, Bytes size) {
  {
    perf::ScopedRegion sync(*rec_, "explicit_sync", perf::Category::kIdle);
    co_await sync_->wait_ready();
  }
  perf::ScopedRegion read(*rec_, "FilesystemReader::read_single_buf",
                          perf::Category::kMovement);
  const fs::LustreHandle h = co_await client_.open(path);
  co_await client_.read(h, Bytes::zero(), size);
  co_await client_.close(h, /*wrote=*/false);
}

}  // namespace mdwf::workflow
