#include "mdwf/workflow/connector.hpp"

#include "mdwf/common/assert.hpp"
#include "mdwf/fault/injector.hpp"
#include "mdwf/workflow/testbed.hpp"

namespace mdwf::workflow {

std::string_view to_string(Solution s) {
  switch (s) {
    case Solution::kDyad:
      return "DYAD";
    case Solution::kXfs:
      return "XFS";
    case Solution::kLustre:
      return "Lustre";
    case Solution::kStream:
      return "Stream";
  }
  return "?";
}

void ExplicitSync::announce(Mark& m, std::uint64_t frame) {
  if (frame + 1 <= m.high) return;  // idempotent re-announcement
  m.high = frame + 1;
  if (m.changed != nullptr) {
    // Wake every waiter; each re-checks its own frame against the mark.
    auto ev = std::move(m.changed);
    ev->trigger();
  }
}

sim::Task<void> ExplicitSync::await(Mark& m, std::uint64_t frame) {
  while (m.high <= frame) {
    if (m.changed == nullptr) {
      m.changed = std::make_shared<sim::Event>(*sim_);
    }
    auto ev = m.changed;  // events are one-shot; hold this generation
    co_await ev->wait();
  }
}

std::unique_ptr<Connector> make_connector(const ConnectorSpec& spec) {
  MDWF_ASSERT(spec.testbed != nullptr && spec.recorder != nullptr);
  Testbed& tb = *spec.testbed;
  integrity::Ledger* ledger = tb.integrity_ledger();
  const bool durable = tb.fault_injector() != nullptr &&
                       tb.fault_injector()->has_crash_windows();
  switch (spec.solution) {
    case Solution::kDyad:
      return std::make_unique<DyadConnector>(*tb.node(spec.node).dyad,
                                             *spec.recorder);
    case Solution::kXfs:
      MDWF_ASSERT_MSG(spec.sync != nullptr, "XFS connector needs a sync");
      return std::make_unique<XfsConnector>(
          tb.simulation(), *tb.node(spec.node).local_fs, *spec.sync,
          *spec.recorder, spec.node, ledger, durable);
    case Solution::kLustre:
      MDWF_ASSERT_MSG(spec.sync != nullptr, "Lustre connector needs a sync");
      return std::make_unique<LustreConnector>(
          tb.simulation(), tb.lustre(), net::NodeId{spec.node}, *spec.sync,
          *spec.recorder, ledger, durable);
    case Solution::kStream:
      // The stream node carries its own ledger/durability wiring (set by
      // the testbed); like DYAD it needs no ExplicitSync.
      return std::make_unique<StreamConnector>(*tb.node(spec.node).stream,
                                               *spec.recorder);
  }
  return nullptr;
}

sim::Task<void> XfsConnector::put(const std::string& path, Bytes size,
                                  std::uint64_t frame) {
  const std::uint64_t f = resolve(frame, put_seq_);
  perf::ScopedRegion write(*rec_, "write", perf::Category::kMovement);
  if (durable_ && fs_->exists(path)) {
    // Re-executed frame after a crash: replace the (possibly torn) copy.
    co_await fs_->unlink(path);
  }
  const fs::InodeId ino = co_await fs_->create(path);
  co_await fs_->write(ino, Bytes::zero(), size);
  if (durable_) {
    // Commit barrier: the frame is power-loss safe before it is announced.
    co_await fs_->fsync(ino);
  }
  if (ledger_ != nullptr) {
    co_await ledger_->charge(size);  // producer-side CRC32C tagging
    ledger_->store(path, integrity::Ledger::ssd_location(node_), node_);
  }
  write.close();
  sync_->signal_ready(f);
}

sim::Task<void> XfsConnector::producer_sync(std::uint64_t frame) {
  const std::uint64_t f = resolve(frame, sync_seq_);
  perf::ScopedRegion wait(*rec_, "producer_sync", perf::Category::kIdle);
  co_await sync_->wait_done(f);
}

sim::Task<void> XfsConnector::get(const std::string& path, Bytes size,
                                  std::uint64_t frame) {
  const std::uint64_t f = resolve(frame, get_seq_);
  {
    perf::ScopedRegion sync(*rec_, "explicit_sync", perf::Category::kIdle);
    co_await sync_->wait_ready(f);
  }
  {
    perf::ScopedRegion read(*rec_, "FilesystemReader::read_single_buf",
                            perf::Category::kMovement);
    const fs::InodeId ino = co_await fs_->open(path);
    co_await fs_->read(ino, Bytes::zero(), size);
  }
  if (ledger_ != nullptr) co_await verify(path, size);
}

sim::Task<void> XfsConnector::verify(const std::string& path, Bytes size) {
  const std::string loc = integrity::Ledger::ssd_location(node_);
  co_await ledger_->charge(size);  // consumer-side CRC32C compute
  bool bad = ledger_->corrupt(path, loc);
  ledger_->count_verify(!bad);
  if (!bad) co_return;
  // Recovery: the producer re-sends the frame from memory — rewrite the
  // shared node-local copy, re-tag, re-read — bounded rounds.
  perf::ScopedRegion repair(*rec_, "integrity_refetch",
                            perf::Category::kMovement);
  for (int round = 0; bad && round < 3; ++round) {
    ledger_->count_refetch();
    const fs::InodeId ino = co_await fs_->open(path);
    co_await fs_->write(ino, Bytes::zero(), size);
    if (durable_) co_await fs_->fsync(ino);
    co_await ledger_->charge(size);  // producer re-tag
    ledger_->store(path, loc, node_);
    const fs::InodeId rino = co_await fs_->open(path);
    co_await fs_->read(rino, Bytes::zero(), size);
    co_await ledger_->charge(size);  // re-verify
    bad = ledger_->corrupt(path, loc);
    ledger_->count_verify(!bad);
  }
  if (bad) ledger_->count_unrecovered();
}

sim::Task<void> LustreConnector::put(const std::string& path, Bytes size,
                                     std::uint64_t frame) {
  const std::uint64_t f = resolve(frame, put_seq_);
  perf::ScopedRegion write(*rec_, "write", perf::Category::kMovement);
  if (durable_ && co_await client_.exists(path)) {
    // Re-executed frame after a crash: replace the torn replica.
    co_await client_.unlink(path);
  }
  if (ledger_ != nullptr) co_await ledger_->charge(size);  // producer tag
  const fs::LustreHandle h = co_await client_.create(path);
  co_await client_.write(h, Bytes::zero(), size);
  // close(wrote) commits the MDS write journal: the replica is durable from
  // here on (crash windows tear only files still open for write).
  co_await client_.close(h, /*wrote=*/true);
  if (ledger_ != nullptr) ledger_->store_lustre(path, node_);
  write.close();
  sync_->signal_ready(f);
}

sim::Task<void> LustreConnector::producer_sync(std::uint64_t frame) {
  const std::uint64_t f = resolve(frame, sync_seq_);
  perf::ScopedRegion wait(*rec_, "producer_sync", perf::Category::kIdle);
  co_await sync_->wait_done(f);
}

sim::Task<void> LustreConnector::get(const std::string& path, Bytes size,
                                     std::uint64_t frame) {
  const std::uint64_t f = resolve(frame, get_seq_);
  {
    perf::ScopedRegion sync(*rec_, "explicit_sync", perf::Category::kIdle);
    co_await sync_->wait_ready(f);
  }
  {
    perf::ScopedRegion read(*rec_, "FilesystemReader::read_single_buf",
                            perf::Category::kMovement);
    const fs::LustreHandle h = co_await client_.open(path);
    co_await client_.read(h, Bytes::zero(), size);
    co_await client_.close(h, /*wrote=*/false);
  }
  if (ledger_ != nullptr) co_await verify(path, size);
}

sim::Task<void> LustreConnector::verify(const std::string& path, Bytes size) {
  const std::string loc(integrity::Ledger::kLustreLocation);
  co_await ledger_->charge(size);  // consumer-side CRC32C compute
  bool bad = ledger_->corrupt(path, loc) || ledger_->flip_lustre_read(node_);
  ledger_->count_verify(!bad);
  if (!bad) co_return;
  // Recovery: a flipped read re-reads from the journal tail; a corrupt
  // replica is re-striped by a producer re-send before the re-read.
  perf::ScopedRegion repair(*rec_, "integrity_refetch",
                            perf::Category::kMovement);
  for (int round = 0; bad && round < 3; ++round) {
    ledger_->count_refetch();
    if (ledger_->corrupt(path, loc)) {
      // Model the producer re-striping the frame; the consumer's client is
      // the conduit for the re-send protocol.
      if (co_await client_.exists(path)) co_await client_.unlink(path);
      co_await ledger_->charge(size);  // producer re-tag
      const fs::LustreHandle h = co_await client_.create(path);
      co_await client_.write(h, Bytes::zero(), size);
      co_await client_.close(h, /*wrote=*/true);
      ledger_->store_lustre(path, node_);
    }
    const fs::LustreHandle h = co_await client_.open(path);
    co_await client_.read(h, Bytes::zero(), size);
    co_await client_.close(h, /*wrote=*/false);
    co_await ledger_->charge(size);  // re-verify
    bad = ledger_->corrupt(path, loc) || ledger_->flip_lustre_read(node_);
    ledger_->count_verify(!bad);
  }
  if (bad) ledger_->count_unrecovered();
}

}  // namespace mdwf::workflow
