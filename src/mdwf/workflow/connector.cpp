#include "mdwf/workflow/connector.hpp"

#include "mdwf/common/assert.hpp"
#include "mdwf/workflow/testbed.hpp"

namespace mdwf::workflow {

std::string_view to_string(Solution s) {
  switch (s) {
    case Solution::kDyad:
      return "DYAD";
    case Solution::kXfs:
      return "XFS";
    case Solution::kLustre:
      return "Lustre";
  }
  return "?";
}

std::unique_ptr<Connector> make_connector(const ConnectorSpec& spec) {
  MDWF_ASSERT(spec.testbed != nullptr && spec.recorder != nullptr);
  Testbed& tb = *spec.testbed;
  switch (spec.solution) {
    case Solution::kDyad:
      return std::make_unique<DyadConnector>(*tb.node(spec.node).dyad,
                                             *spec.recorder);
    case Solution::kXfs:
      MDWF_ASSERT_MSG(spec.sync != nullptr, "XFS connector needs a sync");
      return std::make_unique<XfsConnector>(tb.simulation(),
                                            *tb.node(spec.node).local_fs,
                                            *spec.sync, *spec.recorder);
    case Solution::kLustre:
      MDWF_ASSERT_MSG(spec.sync != nullptr, "Lustre connector needs a sync");
      return std::make_unique<LustreConnector>(
          tb.simulation(), tb.lustre(), net::NodeId{spec.node}, *spec.sync,
          *spec.recorder);
  }
  return nullptr;
}

sim::Task<void> XfsConnector::put(const std::string& path, Bytes size) {
  perf::ScopedRegion write(*rec_, "write", perf::Category::kMovement);
  const fs::InodeId ino = co_await fs_->create(path);
  co_await fs_->write(ino, Bytes::zero(), size);
  write.close();
  sync_->signal_ready();
}

sim::Task<void> XfsConnector::producer_sync() {
  perf::ScopedRegion wait(*rec_, "producer_sync", perf::Category::kIdle);
  co_await sync_->wait_done();
}

sim::Task<void> XfsConnector::get(const std::string& path, Bytes size) {
  {
    perf::ScopedRegion sync(*rec_, "explicit_sync", perf::Category::kIdle);
    co_await sync_->wait_ready();
  }
  perf::ScopedRegion read(*rec_, "FilesystemReader::read_single_buf",
                          perf::Category::kMovement);
  const fs::InodeId ino = co_await fs_->open(path);
  co_await fs_->read(ino, Bytes::zero(), size);
}

sim::Task<void> LustreConnector::put(const std::string& path, Bytes size) {
  perf::ScopedRegion write(*rec_, "write", perf::Category::kMovement);
  const fs::LustreHandle h = co_await client_.create(path);
  co_await client_.write(h, Bytes::zero(), size);
  co_await client_.close(h, /*wrote=*/true);
  write.close();
  sync_->signal_ready();
}

sim::Task<void> LustreConnector::producer_sync() {
  perf::ScopedRegion wait(*rec_, "producer_sync", perf::Category::kIdle);
  co_await sync_->wait_done();
}

sim::Task<void> LustreConnector::get(const std::string& path, Bytes size) {
  {
    perf::ScopedRegion sync(*rec_, "explicit_sync", perf::Category::kIdle);
    co_await sync_->wait_ready();
  }
  perf::ScopedRegion read(*rec_, "FilesystemReader::read_single_buf",
                          perf::Category::kMovement);
  const fs::LustreHandle h = co_await client_.open(path);
  co_await client_.read(h, Bytes::zero(), size);
  co_await client_.close(h, /*wrote=*/false);
}

}  // namespace mdwf::workflow
