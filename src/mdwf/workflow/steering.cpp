#include "mdwf/workflow/steering.hpp"

#include <cmath>

#include "mdwf/common/assert.hpp"

namespace mdwf::workflow {

std::string_view to_string(SteeringCommand c) {
  switch (c) {
    case SteeringCommand::kContinue:
      return "continue";
    case SteeringCommand::kTerminate:
      return "terminate";
    case SteeringCommand::kExtend:
      return "extend";
  }
  return "?";
}

SteeringChannel::SteeringChannel(sim::Simulation& sim, net::Network& network,
                                 net::NodeId consumer_node,
                                 net::NodeId producer_node)
    : sim_(&sim),
      network_(&network),
      consumer_node_(consumer_node),
      producer_node_(producer_node),
      queue_(sim) {}

sim::Task<void> SteeringChannel::send(SteeringCommand cmd) {
  co_await network_->send_control(consumer_node_, producer_node_);
  ++sent_;
  co_await queue_.put(cmd);
}

std::optional<SteeringCommand> SteeringChannel::poll() {
  return queue_.try_get();
}

sim::Task<SteeringCommand> SteeringChannel::receive() {
  co_return co_await queue_.get();
}

ThresholdMonitor::ThresholdMonitor(double threshold_sigmas, int patience,
                                   std::size_t warmup)
    : threshold_(threshold_sigmas), patience_(patience), warmup_(warmup) {
  MDWF_ASSERT(threshold_sigmas > 0.0 && patience >= 1);
}

SteeringCommand ThresholdMonitor::observe(double value) {
  auto absorb = [this](double v) {
    ++n_;
    const double d = v - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (v - mean_);
  };
  if (n_ < warmup_) {
    // Establish the baseline before judging deviations.
    absorb(value);
    return SteeringCommand::kContinue;
  }
  const double var = m2_ / static_cast<double>(n_ > 1 ? n_ - 1 : 1);
  // Sigma floor guards against a degenerate baseline from few samples.
  const double sigma =
      std::max(std::sqrt(var), 1e-3 * std::abs(mean_) + 1e-12);
  if (std::abs(value - mean_) > threshold_ * sigma) {
    if (++strikes_ >= patience_) return SteeringCommand::kTerminate;
  } else {
    strikes_ = 0;
    // Quiet observations keep refining the baseline (adaptive monitor).
    absorb(value);
  }
  return SteeringCommand::kContinue;
}

CvGenerator make_event_cv(std::uint64_t seed, std::uint64_t event_frame,
                          double baseline, double noise, double jump) {
  return [=](std::uint64_t frame) {
    // Stateless deterministic draw per (seed, frame).
    Rng rng(seed ^ (frame * 0x9E3779B97F4A7C15ull) ^ 0xD1B54A32D192ED03ull);
    const double v = baseline + rng.normal(0.0, noise);
    return frame >= event_frame ? v + jump : v;
  };
}

void ProgressLatch::advance() {
  ++produced_;
  wake();
}

void ProgressLatch::finish() {
  finished_ = true;
  wake();
}

void ProgressLatch::wake() {
  std::vector<Waiter> pending;
  pending.swap(waiters_);
  for (const auto& w : pending) {
    if (finished_ || produced_ >= w.target) {
      sim_->schedule_resume(w.h, Duration::zero());
    } else {
      waiters_.push_back(w);
    }
  }
}

sim::Task<bool> ProgressLatch::wait_for(std::uint64_t target) {
  if (!(finished_ || produced_ >= target)) {
    struct Awaiter {
      ProgressLatch* latch;
      std::uint64_t target;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        latch->waiters_.push_back(Waiter{h, target});
      }
      void await_resume() const noexcept {}
    };
    co_await Awaiter{this, target};
  }
  co_return produced_ >= target;
}

sim::Task<void> run_steered_producer(sim::Simulation& sim,
                                     Connector& connector,
                                     perf::Recorder& recorder,
                                     WorkloadConfig workload,
                                     std::uint32_t pair, Rng rng,
                                     SteeringChannel& channel,
                                     ProgressLatch& progress,
                                     std::uint64_t extension,
                                     SteeredPairResult& result) {
  const Bytes frame_bytes = workload.model.frame_bytes();
  std::uint64_t target = workload.frames;
  bool extended = false;
  std::uint64_t f = 0;
  while (f < target) {
    // Steering check between frames.
    while (auto cmd = channel.poll()) {
      if (*cmd == SteeringCommand::kTerminate) {
        result.terminated_early = true;
        target = f;  // stop now
      } else if (*cmd == SteeringCommand::kExtend && !extended) {
        extended = true;
        result.extended = true;
        target += extension;
      }
    }
    if (f >= target) break;
    {
      perf::ScopedRegion compute(recorder, "md_compute",
                                 perf::Category::kCompute);
      const double jitter =
          std::max(-0.5, rng.normal(0.0, workload.step_jitter_sigma));
      co_await sim.delay(workload.frame_compute() * (1.0 + jitter));
    }
    {
      perf::ScopedRegion ser(recorder, "serialize", perf::Category::kCompute);
      co_await sim.delay(workload.serialize_time());
    }
    {
      perf::ScopedRegion produce(recorder, "produce");
      co_await connector.put(frame_path(pair, f), frame_bytes);
    }
    progress.advance();
    result.frames_produced = progress.produced();
    co_await connector.producer_sync();
    ++f;

    // Plan-end decision handshake: when an extension is on the table and no
    // early verdict arrived, wait for the consumer's call on the final
    // planned frame before declaring the trajectory finished.  (A paired
    // consumer running with extend_on_quiet always sends one.)
    if (f == target && extension > 0 && !extended &&
        !result.terminated_early) {
      const SteeringCommand decision = co_await channel.receive();
      if (decision == SteeringCommand::kExtend) {
        extended = true;
        result.extended = true;
        target += extension;
      } else if (decision == SteeringCommand::kTerminate) {
        result.terminated_early = true;
      }
    }
  }
  progress.finish();
  result.frames_produced = progress.produced();
}

sim::Task<void> run_steered_consumer(sim::Simulation& sim,
                                     Connector& connector,
                                     perf::Recorder& recorder,
                                     WorkloadConfig workload,
                                     std::uint32_t pair, CvGenerator cv,
                                     ThresholdMonitor monitor,
                                     SteeringChannel& channel,
                                     ProgressLatch& progress,
                                     bool extend_on_quiet,
                                     SteeredPairResult& result) {
  const Bytes frame_bytes = workload.model.frame_bytes();
  bool terminate_sent = false;
  bool extend_sent = false;
  for (std::uint64_t f = 0;; ++f) {
    if (!co_await progress.wait_for(f + 1)) break;  // stream ended
    {
      perf::ScopedRegion consume(recorder, "consume");
      co_await connector.get(frame_path(pair, f), frame_bytes);
    }
    {
      perf::ScopedRegion des(recorder, "deserialize",
                             perf::Category::kCompute);
      co_await sim.delay(workload.serialize_time());
    }
    SteeringCommand decision = SteeringCommand::kContinue;
    {
      perf::ScopedRegion ana(recorder, "analytics", perf::Category::kCompute);
      co_await sim.delay(workload.frame_compute());
      decision = monitor.observe(cv(f));
    }
    if (decision == SteeringCommand::kTerminate && !terminate_sent) {
      terminate_sent = true;
      co_await channel.send(SteeringCommand::kTerminate);
    }
    if (extend_on_quiet && !terminate_sent && !extend_sent &&
        f + 1 == workload.frames) {
      extend_sent = true;
      co_await channel.send(SteeringCommand::kExtend);
    }
    connector.acknowledge();
    result.frames_consumed = f + 1;
    result.commands = channel.commands_sent();
  }
}

}  // namespace mdwf::workflow
