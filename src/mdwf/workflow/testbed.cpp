#include "mdwf/workflow/testbed.hpp"

#include <algorithm>

#include "mdwf/common/assert.hpp"

namespace mdwf::workflow {

Testbed::Testbed(const TestbedParams& params) : params_(params) {
  MDWF_ASSERT(params.compute_nodes >= 1);
  // Crash consistency: with power-loss windows in the plan, DYAD producers
  // must fsync before publishing or a crash tears frames consumers were
  // already told about.  Kill windows keep storage intact, so cheap
  // page-cache puts stay correct there.
  // A permanent node loss is a power loss that never ends: everything
  // volatile on the node is unreachable for good, so it forces the same
  // durable-put discipline.
  const bool power_loss_planned = std::any_of(
      params.faults.windows.begin(), params.faults.windows.end(),
      [](const fault::FaultWindow& w) {
        return (w.target == fault::FaultTarget::kNodeCrash ||
                w.target == fault::FaultTarget::kNodeLoss) &&
               w.mode == fault::FaultMode::kCrash;
      });
  if (power_loss_planned) {
    params_.dyad.durable_puts = true;
    // Stream staging buffers live in RAM: a power loss drops them, so the
    // publisher spills a durable Lustre replica before announcing.
    params_.stream.durable = true;
  }
  // Backpressure: health fills in default bounded-admission limits unless
  // the caller chose explicit ones (health off leaves every queue unbounded).
  params_.dyad.health = health::with_default_limits(params_.dyad.health);
  const std::uint32_t total_endpoints =
      params.compute_nodes + 1 /*kvs*/ + 1 /*mds*/ + params.lustre.ost_count;
  network_ = std::make_unique<net::Network>(sim_, params.network,
                                            total_endpoints);
  kvs_ = std::make_unique<kvs::KvsServer>(sim_, params.kvs, *network_,
                                          kvs_node());
  std::vector<net::NodeId> ost_nodes;
  for (std::uint32_t i = 0; i < params.lustre.ost_count; ++i) {
    ost_nodes.push_back(net::NodeId{params.compute_nodes + 2 + i});
  }
  lustre_ = std::make_unique<fs::LustreServers>(sim_, params.lustre, *network_,
                                                mds_node(), ost_nodes);
  if (params_.dyad.health.enabled) {
    const health::HealthParams& hp = params_.dyad.health;
    kvs_->set_admission_limit(hp.kvs_admission_limit);
    lustre_->set_admission_limits(hp.mds_admission_limit,
                                  hp.ost_admission_limit, hp.busy_retry_limit,
                                  hp.busy_retry_base);
  }

  nodes_.reserve(params.compute_nodes);
  for (std::uint32_t i = 0; i < params.compute_nodes; ++i) {
    NodeResources r;
    r.ssd = std::make_unique<storage::BlockDevice>(
        sim_, params.node_ssd, "node" + std::to_string(i) + ".nvme");
    r.cache = std::make_unique<storage::PageCache>(sim_, params.page_cache,
                                                   *r.ssd);
    r.local_fs = std::make_unique<fs::LocalFs>(sim_, params.local_fs, *r.ssd,
                                               *r.cache);
    fs::LustreServers* fallback =
        params_.dyad.retry.enabled && params_.dyad.retry.lustre_fallback
            ? lustre_.get()
            : nullptr;
    r.dyad = std::make_unique<dyad::DyadNode>(sim_, params_.dyad, dyad_domain_,
                                              net::NodeId{i}, *r.local_fs,
                                              *network_, *kvs_, fallback);
    r.stream = std::make_unique<stream::StreamNode>(
        sim_, params_.stream, stream_domain_, net::NodeId{i}, *network_, *kvs_,
        *lustre_);
    nodes_.push_back(std::move(r));
  }

  if (params.integrity.enabled) {
    ledger_ = std::make_unique<integrity::Ledger>(sim_, params.integrity);
    for (auto& r : nodes_) {
      r.dyad->set_integrity(ledger_.get());
      r.stream->set_integrity(ledger_.get());
    }
  }

  if (params.trace != nullptr) attach_trace(*params.trace);

  if (!params.faults.empty()) {
    injector_ = std::make_unique<fault::FaultInjector>(sim_, params.faults);
    for (std::uint32_t i = 0; i < params.compute_nodes; ++i) {
      injector_->attach_node_ssd(i, *nodes_[i].ssd);
      injector_->attach_node_fs(i, *nodes_[i].cache, *nodes_[i].local_fs);
      injector_->attach_stream(i, *nodes_[i].stream);
    }
    injector_->attach_network(*network_);
    injector_->attach_kvs(*kvs_);
    injector_->attach_lustre(*lustre_);
    if (ledger_ != nullptr) injector_->attach_integrity(*ledger_);
    injector_->set_trace(params.trace);
    injector_->arm();
  }

  if (params_.membership.enabled) {
    fences_ = std::make_unique<FenceRegistry>(params_.compute_nodes);
    membership_ = std::make_unique<membership::MembershipPlane>(
        sim_, params_.membership, *network_, kvs_node(),
        params_.compute_nodes,
        injector_ != nullptr ? &injector_->monitor() : nullptr, *fences_);
    // Incarnation fencing on every server-side path a zombie could reach:
    // KVS commits, Lustre namespace/commit RPCs, DYAD write-throughs,
    // stream direct puts and handshakes.
    kvs_->set_fencing(fences_.get());
    lustre_->set_fencing(fences_.get());
    for (auto& r : nodes_) {
      r.dyad->set_fencing(fences_.get());
      r.stream->set_fencing(fences_.get());
    }
    membership_->add_declare_listener([this](std::uint32_t lost) {
      // Routing state naming the dead node is poison: drop push-mode
      // subscriptions and learned stream routes to it before the migrated
      // rank re-subscribes from its new home.
      stream_domain_.invalidate_node(net::NodeId{lost});
      for (auto& r : nodes_) {
        r.stream->forget_routes_to(net::NodeId{lost});
      }
      // Rank loops of the dead incarnation may be parked inside local I/O
      // queued on the powered-off device.  Failing the device wakes them
      // with IoError, so the crash-epoch check routes them into migration
      // instead of waiting for a power-on that never comes.
      nodes_[lost].ssd->set_lost();
    });
  }
}

void Testbed::attach_trace(obs::TraceSink& sink) {
  sim_.set_trace(&sink, sink.track("sim", "kernel"));
  for (std::uint32_t i = 0; i < params_.compute_nodes; ++i) {
    const std::string process = "node" + std::to_string(i);
    NodeResources& r = nodes_[i];
    r.ssd->set_trace(&sink, sink.track(process, "nvme"), "nvme");
    r.cache->set_trace(&sink, sink.track(process, "pagecache"), "pagecache");
    r.dyad->set_trace(&sink, sink.track(process, "dyad"));
    r.stream->set_trace(&sink, sink.track(process, "stream"));
    network_->tx(net::NodeId{i})
        .set_trace(&sink, sink.counter_id(sink.track(process, "nic.tx"),
                                          "nic.tx.flows"));
    network_->rx(net::NodeId{i})
        .set_trace(&sink, sink.counter_id(sink.track(process, "nic.rx"),
                                          "nic.rx.flows"));
  }
  kvs_->set_trace(&sink, sink.track("kvs", "broker"));
  lustre_->set_trace(&sink);
}

NodeResources& Testbed::node(std::uint32_t i) {
  MDWF_ASSERT(i < nodes_.size());
  return nodes_[i];
}

}  // namespace mdwf::workflow
