// Runtime steering of simulated MD workflows.
//
// The paper motivates in-situ analytics with *steering*: "study the data as
// it is generated to steer the simulation (e.g., terminate or fork a
// trajectory)" (Sec. II-B).  This module adds the control path:
//
//   - a consumer evaluates a per-frame collective variable (CV),
//   - a `ThresholdMonitor` turns the CV stream into steering commands,
//   - a `SteeringChannel` carries commands back to the producer (paying a
//     control-message cost when the ranks are on different nodes),
//   - the steered producer polls between frames and terminates or extends
//     the trajectory accordingly.
//
// CV values come from a pluggable generator so simulated runs can inject
// deterministic "events" (a real deployment would feed analyze_frame
// results; the rt backend does exactly that).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "mdwf/net/network.hpp"
#include "mdwf/perf/recorder.hpp"
#include "mdwf/sim/primitives.hpp"
#include "mdwf/workflow/connector.hpp"
#include "mdwf/workflow/ensemble.hpp"

namespace mdwf::workflow {

enum class SteeringCommand : std::uint8_t {
  kContinue = 0,
  kTerminate,  // stop producing after the current frame
  kExtend,     // produce extra frames beyond the plan
};

std::string_view to_string(SteeringCommand c);

// One-directional consumer -> producer command path.
class SteeringChannel {
 public:
  SteeringChannel(sim::Simulation& sim, net::Network& network,
                  net::NodeId consumer_node, net::NodeId producer_node);

  // Consumer side: deliver a command (control-message cost across nodes).
  sim::Task<void> send(SteeringCommand cmd);

  // Producer side: non-blocking check between frames.
  std::optional<SteeringCommand> poll();

  // Producer side: blocking receive (the plan-end decision handshake).
  sim::Task<SteeringCommand> receive();

  std::uint64_t commands_sent() const { return sent_; }

 private:
  sim::Simulation* sim_;
  net::Network* network_;
  net::NodeId consumer_node_;
  net::NodeId producer_node_;
  sim::Queue<SteeringCommand> queue_;
  std::uint64_t sent_ = 0;
};

// Turns a CV stream into commands: fires kTerminate when the CV deviates
// from its running mean by more than `threshold_sigmas` for `patience`
// consecutive frames (an "event" was found; stop exploring), or kExtend
// when the trajectory ends quietly but `extend_on_quiet` is set.
class ThresholdMonitor {
 public:
  ThresholdMonitor(double threshold_sigmas = 3.0, int patience = 2,
                   std::size_t warmup = 4);

  SteeringCommand observe(double value);

  double running_mean() const { return mean_; }
  std::size_t observed() const { return n_; }

 private:
  double threshold_;
  int patience_;
  std::size_t warmup_;
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  int strikes_ = 0;
};

// Deterministic CV generator: baseline noise plus a step event at
// `event_frame` (SIZE_MAX = no event), seeded per pair.
using CvGenerator = std::function<double(std::uint64_t frame)>;
CvGenerator make_event_cv(std::uint64_t seed,
                          std::uint64_t event_frame = SIZE_MAX,
                          double baseline = 10.0, double noise = 0.05,
                          double jump = 3.0);

// Monotone produced-frame counter with an end-of-stream marker.  Stands in
// for DYAD's metadata namespace (a real deployment would publish an EOS
// record through the KVS): consumers learn how far the trajectory actually
// went so they never block on frames a terminated producer will not write.
class ProgressLatch {
 public:
  explicit ProgressLatch(sim::Simulation& sim) : sim_(&sim) {}

  void advance();
  void finish();

  std::uint64_t produced() const { return produced_; }
  bool finished() const { return finished_; }

  // Resumes when `target` frames exist (returns true) or the stream ended
  // first (returns false).
  sim::Task<bool> wait_for(std::uint64_t target);

 private:
  void wake();

  struct Waiter {
    std::coroutine_handle<> h;
    std::uint64_t target;
  };

  sim::Simulation* sim_;
  std::uint64_t produced_ = 0;
  bool finished_ = false;
  std::vector<Waiter> waiters_;
};

struct SteeredPairResult {
  std::uint64_t frames_produced = 0;
  std::uint64_t frames_consumed = 0;
  bool terminated_early = false;
  bool extended = false;
  std::uint64_t commands = 0;
};

// Producer that polls the channel between frames: `workload.frames` planned
// frames; kTerminate stops after the current frame; kExtend (honoured once)
// adds `extension` frames.  With extension > 0 the producer *waits for a
// decision at the end of the plan* (the consumer always sends one when
// extend_on_quiet is set): extend, or anything else to finish.  This closes
// the race between the consumer's verdict on the final frame and the
// producer's natural completion.
sim::Task<void> run_steered_producer(sim::Simulation& sim,
                                     Connector& connector,
                                     perf::Recorder& recorder,
                                     WorkloadConfig workload,
                                     std::uint32_t pair, Rng rng,
                                     SteeringChannel& channel,
                                     ProgressLatch& progress,
                                     std::uint64_t extension,
                                     SteeredPairResult& result);

// Consumer that evaluates the CV per frame and steers: sends kTerminate
// when the monitor flags an event; optionally sends kExtend when the
// planned trajectory ends without one.
sim::Task<void> run_steered_consumer(sim::Simulation& sim,
                                     Connector& connector,
                                     perf::Recorder& recorder,
                                     WorkloadConfig workload,
                                     std::uint32_t pair, CvGenerator cv,
                                     ThresholdMonitor monitor,
                                     SteeringChannel& channel,
                                     ProgressLatch& progress,
                                     bool extend_on_quiet,
                                     SteeredPairResult& result);

}  // namespace mdwf::workflow
