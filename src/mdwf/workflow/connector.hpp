// Data-management connectors: the pluggable put/get layer between an MD
// producer and its in-situ consumer.
//
// Three implementations mirror the paper's solutions:
//
//   DyadConnector    - DYAD middleware: node-local staging + KVS/flock
//                      automatic synchronization.  Fully pipelined: the
//                      producer never waits for the consumer.
//
//   XfsConnector     - node-local XFS shared by co-located producer and
//                      consumer, with *manual* coarse-grained sync.
//
//   LustreConnector  - shared parallel filesystem with the same manual
//                      coarse-grained sync.
//
// A fourth solution extends the study beyond the paper (DESIGN.md Sec. 10):
//
//   StreamConnector  - mdwf::stream pub/sub staging data plane: RDMA puts
//                      into a bounded consumer-side buffer, credit-based
//                      back-pressure, spill-to-Lustre overflow.  Like DYAD
//                      it needs no ExplicitSync; unlike DYAD the hot path
//                      never touches the page cache or the filesystem.
//
// Manual synchronization (ExplicitSync) reproduces what the paper measures
// as MPI_Barrier idle time: the coarse-grained approach serializes producer
// and consumer iterations (paper Sec. III: "...not overlapping producer and
// consumer tasks", "result in serialized execution of the producer and
// consumer").  Concretely: the consumer blocks until the frame is written
// (`explicit_sync`, its idle bar), and the producer blocks until the
// consumer finishes its iteration before starting the next stride
// (`producer_sync`; outside the measured produce region, as in the paper
// where production shows "no significant idle").
//
// Crash consistency (PR 3): every verb carries an explicit frame index so
// re-executed frames stay idempotent.  ExplicitSync is level-triggered on
// per-frame high-water marks rather than edge-triggered tokens: a producer
// that rolls back to a checkpoint and re-announces frames it already
// announced cannot double-release a consumer, and a consumer that re-waits
// for an already-announced frame proceeds immediately instead of
// deadlocking on a consumed token.  Callers that predate the crash model
// omit the index (kAutoFrame) and get the old strictly-in-order behaviour.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "mdwf/common/bytes.hpp"
#include "mdwf/dyad/dyad.hpp"
#include "mdwf/fs/local_fs.hpp"
#include "mdwf/fs/lustre.hpp"
#include "mdwf/integrity/ledger.hpp"
#include "mdwf/perf/recorder.hpp"
#include "mdwf/sim/primitives.hpp"
#include "mdwf/stream/stream.hpp"

namespace mdwf::workflow {

class Testbed;

// The paper's three data-management solutions, plus the streaming plane.
enum class Solution { kDyad, kXfs, kLustre, kStream };
std::string_view to_string(Solution s);

// Producer/consumer-pair rendezvous for the manual-sync connectors.
//
// Level-triggered per-frame marks: `signal_ready(f)` declares frames
// [0, f] visible (idempotent under producer re-execution), `wait_ready(f)`
// resolves once frame f has ever been announced.  Same for done.  For
// healthy in-order callers this behaves exactly like the old paired
// semaphore; under crash/restart it tolerates replayed signals and
// re-issued waits.
class ExplicitSync {
 public:
  explicit ExplicitSync(sim::Simulation& sim) : sim_(&sim) {}

  // Producer: frame `frame` data is visible.
  void signal_ready(std::uint64_t frame) { announce(ready_, frame); }
  // Consumer: block until frame `frame` is ready.
  sim::Task<void> wait_ready(std::uint64_t frame) {
    return await(ready_, frame);
  }
  // Consumer: iteration `frame` (read + analytics) finished.
  void signal_done(std::uint64_t frame) { announce(done_, frame); }
  // Producer: block until the consumer finished iteration `frame`.
  sim::Task<void> wait_done(std::uint64_t frame) { return await(done_, frame); }

  std::uint64_t ready_frames() const { return ready_.high; }
  std::uint64_t done_frames() const { return done_.high; }

 private:
  struct Mark {
    std::uint64_t high = 0;              // frames [0, high) announced
    std::shared_ptr<sim::Event> changed; // recreated per announcement
  };

  void announce(Mark& m, std::uint64_t frame);
  sim::Task<void> await(Mark& m, std::uint64_t frame);

  sim::Simulation* sim_;
  Mark ready_;
  Mark done_;
};

// One connector instance per rank (producer or consumer); put() is used by
// producers, get() by consumers.  The frame index makes re-execution after
// a crash explicit; callers that always move forward can omit it and the
// connector derives it from a per-verb sequence counter.
class Connector {
 public:
  // Sentinel frame index: derive from the connector's own in-order counter.
  static constexpr std::uint64_t kAutoFrame = ~std::uint64_t{0};

  virtual ~Connector() = default;

  // Publish `size` bytes under `path` as frame `frame`.
  virtual sim::Task<void> put(const std::string& path, Bytes size,
                              std::uint64_t frame = kAutoFrame) = 0;
  // After put: block until the consumer allows the next iteration (manual
  // coarse-grained sync only; no-op for DYAD).
  virtual sim::Task<void> producer_sync(std::uint64_t frame = kAutoFrame) = 0;
  // Acquire and read `path` (frame `frame`).
  virtual sim::Task<void> get(const std::string& path, Bytes size,
                              std::uint64_t frame = kAutoFrame) = 0;
  // Consumer iteration complete (manual sync only; no-op for DYAD).
  virtual void acknowledge(std::uint64_t frame = kAutoFrame) {}

  // The connector whose per-rank counters the collector should read.
  // Decorators (e.g. the co-tenant SLO fallback wrapper) forward to their
  // primary so a DYAD tenant's stats survive wrapping.
  virtual const Connector& stats_target() const { return *this; }

 protected:
  // Resolve kAutoFrame against a per-verb monotonic sequence; an explicit
  // index also fast-forwards the sequence so mixed use stays coherent.
  static std::uint64_t resolve(std::uint64_t frame, std::uint64_t& seq) {
    if (frame != kAutoFrame) {
      seq = frame + 1;
      return frame;
    }
    return seq++;
  }

  std::uint64_t put_seq_ = 0;
  std::uint64_t sync_seq_ = 0;
  std::uint64_t get_seq_ = 0;
  std::uint64_t ack_seq_ = 0;
};

class DyadConnector final : public Connector {
 public:
  DyadConnector(dyad::DyadNode& node, perf::Recorder& recorder)
      : producer_(node, recorder), consumer_(node, recorder) {}

  sim::Task<void> put(const std::string& path, Bytes size,
                      std::uint64_t frame) override {
    (void)frame;  // DYAD synchronizes on the namespace, not frame order
    co_await producer_.produce(path, size);
  }
  sim::Task<void> producer_sync(std::uint64_t frame) override {
    (void)frame;
    co_return;
  }
  sim::Task<void> get(const std::string& path, Bytes size,
                      std::uint64_t frame) override {
    (void)frame;
    co_await consumer_.consume(path, size);
  }

  const dyad::DyadConsumer& consumer() const { return consumer_; }

 private:
  dyad::DyadProducer producer_;
  dyad::DyadConsumer consumer_;
};

class XfsConnector final : public Connector {
 public:
  // `ledger` (optional) enables end-to-end CRC verification on every get;
  // `durable` makes each put fsync (crash-consistent commit barrier) and
  // re-puts replace possibly-torn leftovers.  Defaults preserve the
  // healthy-cluster timings the paper measures.
  XfsConnector(sim::Simulation& sim, fs::LocalFs& fs, ExplicitSync& sync,
               perf::Recorder& recorder, std::uint32_t node = 0,
               integrity::Ledger* ledger = nullptr, bool durable = false)
      : sim_(&sim),
        fs_(&fs),
        sync_(&sync),
        rec_(&recorder),
        node_(node),
        ledger_(ledger),
        durable_(durable) {}

  sim::Task<void> put(const std::string& path, Bytes size,
                      std::uint64_t frame) override;
  sim::Task<void> producer_sync(std::uint64_t frame) override;
  sim::Task<void> get(const std::string& path, Bytes size,
                      std::uint64_t frame) override;
  void acknowledge(std::uint64_t frame) override {
    sync_->signal_done(resolve(frame, ack_seq_));
  }

 private:
  sim::Task<void> verify(const std::string& path, Bytes size);

  sim::Simulation* sim_;
  fs::LocalFs* fs_;
  ExplicitSync* sync_;
  perf::Recorder* rec_;
  std::uint32_t node_;
  integrity::Ledger* ledger_;
  bool durable_;
};

class LustreConnector final : public Connector {
 public:
  LustreConnector(sim::Simulation& sim, fs::LustreServers& servers,
                  net::NodeId node, ExplicitSync& sync,
                  perf::Recorder& recorder,
                  integrity::Ledger* ledger = nullptr, bool durable = false)
      : sim_(&sim),
        client_(sim, servers, node),
        sync_(&sync),
        rec_(&recorder),
        node_(node.value),
        ledger_(ledger),
        durable_(durable) {}

  sim::Task<void> put(const std::string& path, Bytes size,
                      std::uint64_t frame) override;
  sim::Task<void> producer_sync(std::uint64_t frame) override;
  sim::Task<void> get(const std::string& path, Bytes size,
                      std::uint64_t frame) override;
  void acknowledge(std::uint64_t frame) override {
    sync_->signal_done(resolve(frame, ack_seq_));
  }

 private:
  sim::Task<void> verify(const std::string& path, Bytes size);

  sim::Simulation* sim_;
  fs::LustreClient client_;
  ExplicitSync* sync_;
  perf::Recorder* rec_;
  std::uint32_t node_;
  integrity::Ledger* ledger_;
  bool durable_;
};

class StreamConnector final : public Connector {
 public:
  StreamConnector(stream::StreamNode& node, perf::Recorder& recorder)
      : node_(&node), publisher_(node, recorder), subscriber_(node, recorder) {}

  sim::Task<void> put(const std::string& path, Bytes size,
                      std::uint64_t frame) override {
    (void)frame;  // re-published frames dedup on the path, not frame order
    co_await publisher_.publish(path, size);
  }
  sim::Task<void> producer_sync(std::uint64_t frame) override {
    (void)frame;  // back-pressure is credit-based, not barrier-based
    co_return;
  }
  sim::Task<void> get(const std::string& path, Bytes size,
                      std::uint64_t frame) override {
    (void)frame;
    co_await subscriber_.fetch(path, size);
  }

  const stream::StreamNode& node() const { return *node_; }

 private:
  stream::StreamNode* node_ = nullptr;
  stream::StreamPublisher publisher_;
  stream::StreamSubscriber subscriber_;
};

// Everything needed to build one rank's connector against a testbed.  The
// manual-sync solutions (XFS, Lustre) require `sync`; DYAD and stream
// ignore it.
struct ConnectorSpec {
  Testbed* testbed = nullptr;
  Solution solution = Solution::kDyad;
  // Compute node the rank runs on.  For XFS this is also the node whose
  // local filesystem both ranks share (colocated by construction).
  std::uint32_t node = 0;
  ExplicitSync* sync = nullptr;
  perf::Recorder* recorder = nullptr;
};

// Factory for the solution-appropriate connector.  Integrity verification is
// wired when the testbed carries a ledger; durable (fsync-barrier) puts are
// wired when its fault plan contains crash windows.
std::unique_ptr<Connector> make_connector(const ConnectorSpec& spec);

}  // namespace mdwf::workflow
