// Data-management connectors: the pluggable put/get layer between an MD
// producer and its in-situ consumer.
//
// Three implementations mirror the paper's solutions:
//
//   DyadConnector    - DYAD middleware: node-local staging + KVS/flock
//                      automatic synchronization.  Fully pipelined: the
//                      producer never waits for the consumer.
//
//   XfsConnector     - node-local XFS shared by co-located producer and
//                      consumer, with *manual* coarse-grained sync.
//
//   LustreConnector  - shared parallel filesystem with the same manual
//                      coarse-grained sync.
//
// Manual synchronization (ExplicitSync) reproduces what the paper measures
// as MPI_Barrier idle time: the coarse-grained approach serializes producer
// and consumer iterations (paper Sec. III: "...not overlapping producer and
// consumer tasks", "result in serialized execution of the producer and
// consumer").  Concretely: the consumer blocks until the frame is written
// (`explicit_sync`, its idle bar), and the producer blocks until the
// consumer finishes its iteration before starting the next stride
// (`producer_sync`; outside the measured produce region, as in the paper
// where production shows "no significant idle").
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "mdwf/common/bytes.hpp"
#include "mdwf/dyad/dyad.hpp"
#include "mdwf/fs/local_fs.hpp"
#include "mdwf/fs/lustre.hpp"
#include "mdwf/perf/recorder.hpp"
#include "mdwf/sim/primitives.hpp"

namespace mdwf::workflow {

class Testbed;

// The paper's three data-management solutions.
enum class Solution { kDyad, kXfs, kLustre };
std::string_view to_string(Solution s);

// Producer/consumer-pair rendezvous for the manual-sync connectors.
class ExplicitSync {
 public:
  explicit ExplicitSync(sim::Simulation& sim)
      : ready_(sim, 0), done_(sim, 0) {}

  // Producer: frame data is visible.
  void signal_ready() { ready_.release(); }
  // Consumer: block until the frame is ready.
  auto wait_ready() { return ready_.acquire(); }
  // Consumer: iteration (read + analytics) finished.
  void signal_done() { done_.release(); }
  // Producer: block until the consumer finished consuming.
  auto wait_done() { return done_.acquire(); }

 private:
  sim::Semaphore ready_;
  sim::Semaphore done_;
};

// One connector instance per rank (producer or consumer); put() is used by
// producers, get() by consumers.
class Connector {
 public:
  virtual ~Connector() = default;

  // Publish `size` bytes under `path`.
  virtual sim::Task<void> put(const std::string& path, Bytes size) = 0;
  // After put: block until the consumer allows the next iteration (manual
  // coarse-grained sync only; no-op for DYAD).
  virtual sim::Task<void> producer_sync() = 0;
  // Acquire and read `path`.
  virtual sim::Task<void> get(const std::string& path, Bytes size) = 0;
  // Consumer iteration complete (manual sync only; no-op for DYAD).
  virtual void acknowledge() {}
};

class DyadConnector final : public Connector {
 public:
  DyadConnector(dyad::DyadNode& node, perf::Recorder& recorder)
      : producer_(node, recorder), consumer_(node, recorder) {}

  sim::Task<void> put(const std::string& path, Bytes size) override {
    co_await producer_.produce(path, size);
  }
  sim::Task<void> producer_sync() override { co_return; }
  sim::Task<void> get(const std::string& path, Bytes size) override {
    co_await consumer_.consume(path, size);
  }

  const dyad::DyadConsumer& consumer() const { return consumer_; }

 private:
  dyad::DyadProducer producer_;
  dyad::DyadConsumer consumer_;
};

class XfsConnector final : public Connector {
 public:
  XfsConnector(sim::Simulation& sim, fs::LocalFs& fs, ExplicitSync& sync,
               perf::Recorder& recorder)
      : sim_(&sim), fs_(&fs), sync_(&sync), rec_(&recorder) {}

  sim::Task<void> put(const std::string& path, Bytes size) override;
  sim::Task<void> producer_sync() override;
  sim::Task<void> get(const std::string& path, Bytes size) override;
  void acknowledge() override { sync_->signal_done(); }

 private:
  sim::Simulation* sim_;
  fs::LocalFs* fs_;
  ExplicitSync* sync_;
  perf::Recorder* rec_;
};

class LustreConnector final : public Connector {
 public:
  LustreConnector(sim::Simulation& sim, fs::LustreServers& servers,
                  net::NodeId node, ExplicitSync& sync,
                  perf::Recorder& recorder)
      : sim_(&sim),
        client_(sim, servers, node),
        sync_(&sync),
        rec_(&recorder) {}

  sim::Task<void> put(const std::string& path, Bytes size) override;
  sim::Task<void> producer_sync() override;
  sim::Task<void> get(const std::string& path, Bytes size) override;
  void acknowledge() override { sync_->signal_done(); }

 private:
  sim::Simulation* sim_;
  fs::LustreClient client_;
  ExplicitSync* sync_;
  perf::Recorder* rec_;
};

// Everything needed to build one rank's connector against a testbed.  The
// manual-sync solutions (XFS, Lustre) require `sync`; DYAD ignores it.
struct ConnectorSpec {
  Testbed* testbed = nullptr;
  Solution solution = Solution::kDyad;
  // Compute node the rank runs on.  For XFS this is also the node whose
  // local filesystem both ranks share (colocated by construction).
  std::uint32_t node = 0;
  ExplicitSync* sync = nullptr;
  perf::Recorder* recorder = nullptr;
};

// Factory for the solution-appropriate connector.
std::unique_ptr<Connector> make_connector(const ConnectorSpec& spec);

}  // namespace mdwf::workflow
