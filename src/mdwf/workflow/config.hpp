// key=value -> EnsembleConfig binding, shared by the CLI driver and the
// benchmark binaries.
//
// `parse_ensemble_config` reads the experiment keys (solution, pairs, nodes,
// model, stride, frames, reps, seed, interference, push, jitter, compress,
// colocate, faults, retry, integrity, checkpoint, trace) from a
// KeyValueConfig on top of a caller-provided defaults object, applies the
// cross-key rules (XFS defaults to one node; injected faults turn the DYAD
// recovery protocol on; bit-flip/crash scenarios turn end-to-end checksums
// on; crash windows turn per-rank checkpointing on; fault scenarios are
// materialized against the configured cluster shape), and returns the bound
// config.  Unknown keys fail fast with a one-line did-you-mean diagnostic;
// callers with driver-only keys (output, tree, ...) read them before
// parsing so they are already marked known on `cfg`.
#pragma once

#include "mdwf/common/keyval.hpp"
#include "mdwf/workflow/ensemble.hpp"

namespace mdwf::workflow {

// Throws mdwf::ConfigError on an unknown solution, model, fault scenario,
// or leftover (unconsumed, unrecognized) key — with a did-you-mean hint
// when a known token is within two edits.
EnsembleConfig parse_ensemble_config(const KeyValueConfig& cfg,
                                     const EnsembleConfig& defaults = {});

}  // namespace mdwf::workflow
