#include "mdwf/workflow/config.hpp"

#include <stdexcept>
#include <string>
#include <string_view>

#include "mdwf/common/suggest.hpp"
#include "mdwf/fault/plan.hpp"
#include "mdwf/md/models.hpp"
#include "mdwf/wload/wload.hpp"

namespace mdwf::workflow {

namespace {

constexpr std::string_view kSolutionNames[] = {"dyad", "xfs", "lustre",
                                               "stream"};

// Every key this binding understands, the candidate set for typo
// suggestions (keys the caller reads before parsing are already marked
// known and never reach the diagnostic).
constexpr std::string_view kKnownKeys[] = {
    "solution", "model",    "stride",       "pairs",    "nodes",
    "frames",   "jitter",   "analytics",    "reps",     "seed",
    "threads",  "interference",             "push",     "compress",
    "colocate", "faults",   "retry",        "health",   "hedge",
    "integrity",            "checkpoint",   "trace",    "membership",
    // Co-tenant driver keys (read by mdwf::tenant::parse_multi_tenant
    // before this binding runs; listed here for typo suggestions).
    "tenants",  "slo",      "slo_target_us", "quota",
    // DAG workload import (mdwf::wload; PR 10).
    "workload", "dag_tasks", "dag_width",    "dag_seed", "dag_runtime",
    "dag_bytes", "dag_chunk", "dag_scale"};

// Keys that only make sense alongside workload= (fail fast on strays).
constexpr std::string_view kDagOnlyKeys[] = {
    "dag_tasks", "dag_width", "dag_seed",  "dag_runtime",
    "dag_bytes", "dag_chunk", "dag_scale"};

std::string solution_key(Solution s) {
  switch (s) {
    case Solution::kDyad:
      return "dyad";
    case Solution::kXfs:
      return "xfs";
    case Solution::kLustre:
      return "lustre";
    case Solution::kStream:
      return "stream";
  }
  return "dyad";
}

}  // namespace

EnsembleConfig parse_ensemble_config(const KeyValueConfig& cfg,
                                     const EnsembleConfig& defaults) {
  EnsembleConfig config = defaults;

  const std::string solution =
      cfg.get_string("solution", solution_key(defaults.solution));
  if (solution == "dyad") {
    config.solution = Solution::kDyad;
  } else if (solution == "xfs") {
    config.solution = Solution::kXfs;
  } else if (solution == "lustre") {
    config.solution = Solution::kLustre;
  } else if (solution == "stream") {
    config.solution = Solution::kStream;
  } else {
    // Fail fast: a typo must not silently fall back to a default solution.
    throw ConfigError("unknown solution '" + solution + "'" +
                      did_you_mean(solution, kSolutionNames));
  }

  const std::string model_name =
      cfg.get_string("model", std::string(defaults.workload.model.name));
  const auto model = md::find_model(model_name);
  if (!model.has_value()) {
    throw ConfigError("unknown model '" + model_name + "'");
  }
  config.workload.model = *model;
  // A different model resets the stride to its Table II default; an explicit
  // stride key always wins.
  const std::uint64_t default_stride =
      model->name == defaults.workload.model.name ? defaults.workload.stride
                                                  : model->stride;
  config.workload.stride = cfg.get_uint("stride", default_stride);

  config.pairs = static_cast<std::uint32_t>(cfg.get_uint("pairs",
                                                         defaults.pairs));
  // XFS cannot move data between nodes, so it defaults to a single one.
  const std::uint32_t default_nodes =
      config.solution == Solution::kXfs ? 1 : defaults.nodes;
  config.nodes =
      static_cast<std::uint32_t>(cfg.get_uint("nodes", default_nodes));
  config.workload.frames = cfg.get_uint("frames", defaults.workload.frames);
  config.workload.step_jitter_sigma =
      cfg.get_double("jitter", defaults.workload.step_jitter_sigma);
  // Consumer analytics time as a multiple of the frame period; >1 models
  // in-situ analysis that falls behind production.
  config.workload.analytics_scale =
      cfg.get_double("analytics", defaults.workload.analytics_scale);
  if (config.workload.analytics_scale <= 0.0) {
    throw ConfigError("analytics must be > 0, got " +
                      std::to_string(config.workload.analytics_scale));
  }
  config.repetitions =
      static_cast<std::uint32_t>(cfg.get_uint("reps", defaults.repetitions));
  config.base_seed = cfg.get_uint("seed", defaults.base_seed);
  // Worker threads for the parallel replica runner (mdwf::sweep); 0 = all
  // hardware threads.  Never affects results, only wall-clock time.
  config.threads =
      static_cast<std::uint32_t>(cfg.get_uint("threads", defaults.threads));
  config.lustre_interference =
      cfg.get_bool("interference", defaults.lustre_interference);
  config.testbed.dyad.push_mode =
      cfg.get_bool("push", defaults.testbed.dyad.push_mode);
  config.workload.compress =
      cfg.get_bool("compress", defaults.workload.compress);
  if (cfg.get_bool("colocate",
                   defaults.placement == Placement::kColocated)) {
    config.placement = Placement::kColocated;
  }

  const std::string faults = cfg.get_string("faults", "none");
  if (faults != "none") {
    fault::ScenarioShape shape;
    shape.compute_nodes = config.nodes;
    shape.ost_count = config.testbed.lustre.ost_count;
    shape.seed = config.base_seed;
    try {
      config.testbed.faults = fault::make_scenario(faults, shape);
    } catch (const std::invalid_argument& e) {
      throw ConfigError(e.what());
    }
  }
  // Recovery protocol defaults on under injected faults (a retry-less DYAD
  // consumer deadlocks through a broker outage); retry=0 reproduces that.
  const bool retry = cfg.get_bool(
      "retry", faults != "none" || defaults.testbed.dyad.retry.enabled);
  config.testbed.dyad.retry.enabled = retry;
  config.testbed.dyad.retry.lustre_fallback = retry;

  // Gray-failure mitigation (mdwf::health): health=on arms the phi-accrual
  // detector, circuit breaker, and bounded admission queues; hedge=on
  // additionally races a delayed Lustre-replica read against slow cold
  // fetches (and implies health=on).  Breaker trips and hedges act only
  // when the Lustre failover path exists, i.e. retry is on — which it is
  // by default whenever faults != none.
  const bool hedge =
      cfg.get_bool("hedge", defaults.testbed.dyad.health.hedge.enabled);
  config.testbed.dyad.health.hedge.enabled = hedge;
  config.testbed.dyad.health.enabled =
      cfg.get_bool("health",
                   hedge || defaults.testbed.dyad.health.enabled) ||
      hedge;
  // The stream plane shares the health/hedge switches: hedge=on races a
  // stalled subscription against the spill-replica read.
  config.testbed.stream.health.hedge.enabled = hedge;
  config.testbed.stream.health.enabled = config.testbed.dyad.health.enabled;

  // Membership plane (mdwf::membership): heartbeats, declare-dead policy,
  // rank migration, incarnation fencing.  membership=0 reproduces the
  // park-forever behaviour — a permanent node loss then ends in the
  // deadlock reporter instead of completing via migration.
  config.testbed.membership.enabled =
      cfg.get_bool("membership", defaults.testbed.membership.enabled);

  // End-to-end integrity defaults on whenever the plan can corrupt or tear
  // frames (bit-flip or node-crash windows): unchecked runs would count
  // corrupt frames as delivered.  integrity=off reproduces that baseline;
  // integrity=on forces checksums under a healthy plan.
  bool flips = false;
  bool crashes = false;
  for (const auto& w : config.testbed.faults.windows) {
    flips = flips || w.mode == fault::FaultMode::kBitFlip;
    crashes = crashes || w.target == fault::FaultTarget::kNodeCrash;
  }
  config.testbed.integrity.enabled = cfg.get_bool(
      "integrity", flips || crashes || defaults.testbed.integrity.enabled);

  // checkpoint=N persists a rank's progress record every N completed
  // frames; checkpoint=0 disables records even under crash windows (a
  // restart then re-executes from frame 0).  Absent = auto: on with
  // interval 1 iff the plan has crash windows.
  if (cfg.has("checkpoint")) {
    const std::uint64_t every = cfg.get_uint("checkpoint", 1);
    if (every == 0) {
      config.checkpoint.mode = CheckpointParams::Mode::kOff;
    } else {
      config.checkpoint.mode = CheckpointParams::Mode::kOn;
      config.checkpoint.interval = every;
    }
  } else {
    cfg.note_known("checkpoint");
  }

  config.trace_path = cfg.get_string("trace", defaults.trace_path);

  // DAG workload import (mdwf::wload): workload=wfcommons:<file> runs an
  // imported WfCommons/WorkflowHub instance, workload=synth:<topology> a
  // seeded synthetic graph shaped by the dag_* keys.  All-or-nothing: any
  // loader/validation problem throws before the config binds.
  const std::string workload_ref = cfg.get_string("workload", "");
  if (!workload_ref.empty()) {
    if (cfg.has("frames")) {
      throw ConfigError(
          "frames is derived from the DAG workload (edge payloads / "
          "dag_chunk); drop frames= when workload= is set");
    }
    if (cfg.has("checkpoint")) {
      throw ConfigError(
          "checkpoint records are not supported with DAG workloads (a "
          "restarted task re-executes from its first frame)");
    }
    if (config.testbed.membership.enabled) {
      throw ConfigError(
          "the membership plane (rank migration) does not support DAG "
          "workloads yet; drop membership=1 or workload=");
    }
    if (cfg.has("tenants")) {
      throw ConfigError(
          "co-tenant runs do not support DAG workloads; drop tenants= or "
          "workload=");
    }
    wload::WorkloadDefaults wd;
    wd.synth_tasks = cfg.get_uint("dag_tasks", wd.synth_tasks);
    wd.synth_width = static_cast<std::uint32_t>(
        cfg.get_uint("dag_width", wd.synth_width));
    wd.synth_seed = cfg.get_uint("dag_seed", wd.synth_seed);
    wd.synth_runtime_s = cfg.get_double("dag_runtime", wd.synth_runtime_s);
    wd.synth_output_bytes =
        cfg.get_double("dag_bytes", wd.synth_output_bytes);
    config.dag = std::make_shared<const wload::Dag>(
        wload::load_workload(workload_ref, wd));
    const std::uint64_t chunk =
        cfg.get_uint("dag_chunk", config.dag_chunk.count());
    if (chunk == 0) {
      throw ConfigError("dag_chunk must be a positive byte count");
    }
    config.dag_chunk = Bytes(chunk);
    config.dag_runtime_scale =
        cfg.get_double("dag_scale", defaults.dag_runtime_scale);
    if (config.dag_runtime_scale <= 0.0) {
      throw ConfigError("dag_scale must be > 0, got " +
                        std::to_string(config.dag_runtime_scale));
    }
  } else {
    for (const std::string_view k : kDagOnlyKeys) {
      if (cfg.has(k)) {
        throw ConfigError(std::string(k) +
                          " requires a DAG workload; set "
                          "workload=wfcommons:<file> or synth:<topology>");
      }
    }
  }

  // Fail fast on leftovers: every key the caller did not already consume
  // and this binding does not understand is a typo, diagnosed on one line.
  if (const auto unknown = cfg.unknown_keys(); !unknown.empty()) {
    std::string msg = "unknown key(s):";
    for (const auto& k : unknown) {
      msg += " " + k + did_you_mean(k, kKnownKeys);
    }
    throw ConfigError(msg);
  }

  return config;
}

}  // namespace mdwf::workflow
