// DAG workload execution on the workflow testbed (mdwf::wload graphs).
//
// Generalizes run_repetition's fixed producer→consumer pipeline into
// dependency-driven rank loops: one coroutine per workflow task, one
// connector pair per DAG edge.  A task fetches every parent frame through
// its in-edge connectors (so it cannot start computing before its inputs
// verify), runs its compute budget, then publishes its output frames to
// every out-edge — all through the configured Connector, so every
// data-movement solution, the fault/integrity planes, and mdwf::obs
// tracing apply to imported graphs unchanged.
//
// Edge framing: a parent's `output_bytes` payload is cut into
// ceil(bytes / dag_chunk) equal frames; every out-edge of the task carries
// the same frame sequence, and each edge has its own path prefix
// ("dag%04u/") for push-mode and stream subscriptions.
//
// Manual-sync solutions (XFS/Lustre) keep the per-frame consumer-side
// wait (`explicit_sync` idle) but defer the producer-side barrier to the
// end of each edge: the classic per-frame producer_sync generalizes to a
// deadlock on diamond graphs (a producer blocked on one child's acks
// while that child waits for a sibling's output).
//
// Crash model: DAG ranks are crash-aware but checkpoint-free — a restart
// re-executes the whole task (fetch phase included).  Connector puts are
// idempotent and ExplicitSync marks are level-triggered, so re-execution
// is safe; RankStats separates distinct progress from re-execution.  The
// membership plane (rank migration) is not supported with DAG workloads;
// parse_ensemble_config rejects the combination.
#pragma once

#include <cstdint>
#include <vector>

#include "mdwf/workflow/ensemble.hpp"

namespace mdwf::wload {
struct Dag;
}

namespace mdwf::workflow {

// Frame path of DAG edge `edge`, frame `f`, and the edge's path prefix
// (push-mode / stream subscription key) — the DAG analogs of frame_path /
// pair_prefix.
std::string dag_frame_path(std::uint32_t edge, std::uint64_t f);
std::string dag_edge_prefix(std::uint32_t edge);

// One inter-task edge with its frame layout.
struct DagEdgePlan {
  std::uint32_t parent = 0;  // Dag task indices (topological)
  std::uint32_t child = 0;
  std::uint64_t frames = 1;  // ceil(parent.output_bytes / chunk)
  Bytes frame_bytes{};       // per-frame wire size
};

// Deterministic execution layout for one Dag on a testbed: canonical edge
// order (child-major, parents ascending — so a task's out-edges and
// in-edges are both index-sorted), per-task edge lists, and round-robin
// task placement over the node range.
struct DagPlan {
  std::vector<DagEdgePlan> edges;
  std::vector<std::vector<std::uint32_t>> in_edges;   // per task, edge ids
  std::vector<std::vector<std::uint32_t>> out_edges;  // per task, edge ids
  std::vector<std::uint32_t> node_of;                 // per task
  // Sum of `frames` over all edges: the completeness denominator (a
  // finished run fetches — and publishes — exactly this many edge-frames).
  std::uint64_t total_edge_frames = 0;
};

DagPlan plan_dag(const wload::Dag& dag, Bytes chunk, std::uint32_t nodes);

// Test-only lifecycle hook: the property tests record publish/fetch times
// to assert topological ordering without reaching into the simulation.
// Calls are synchronous from the rank coroutines; implementations must not
// block.  Null = off (the production path).
class DagProbe {
 public:
  virtual ~DagProbe() = default;
  // Task `task` finished fetching frame `f` of in-edge `edge`.
  virtual void on_fetch(std::uint32_t task, std::uint32_t edge,
                        std::uint64_t f, TimePoint when) = 0;
  // Task `task` finished publishing frame `f` on out-edge `edge`.
  virtual void on_publish(std::uint32_t task, std::uint32_t edge,
                          std::uint64_t f, TimePoint when) = 0;
  // Task `task` completed (all fetches, compute, publishes, barriers).
  virtual void on_complete(std::uint32_t task, TimePoint when) = 0;
};

// Runs repetition `rep` of a DAG ensemble (config.dag non-null) in an
// isolated Simulation; the run_repetition dispatcher forwards here, so
// callers use run_repetition / run_ensemble / mdwf::sweep as usual.
// Thread-safe with respect to other repetitions; equal (config, rep) give
// byte-identical outcomes at any thread count.
RepOutcome run_dag_repetition(const EnsembleConfig& config, std::uint32_t rep,
                              obs::TraceSink* trace = nullptr,
                              DagProbe* probe = nullptr);

}  // namespace mdwf::workflow
