#include "mdwf/workflow/checkpoint.hpp"

#include <algorithm>

#include "mdwf/storage/block_device.hpp"

namespace mdwf::workflow {

sim::Task<void> Checkpoint::persist(std::uint64_t frames_done) {
  if (frames_done == 0 || frames_done % params_.interval != 0) co_return;
  const std::uint64_t epoch0 =
      monitor_ != nullptr ? monitor_->epoch(node_) : 0;
  try {
    if (!ino_.has_value()) ino_ = co_await fs_->create(path_);
    co_await fs_->write(*ino_, Bytes::zero(), params_.record_size);
    co_await fs_->fsync(*ino_);
  } catch (const storage::IoError&) {
    co_return;  // crash window struck the device: record lost, run continues
  } catch (const fs::FsError&) {
    co_return;
  }
  if (monitor_ != nullptr && monitor_->epoch(node_) != epoch0) {
    // The node died while the barrier was in flight; whatever the fsync
    // claims, the dirty record pages are gone.
    co_return;
  }
  durable_ = std::max(durable_, frames_done);
  ++persists_;
}

}  // namespace mdwf::workflow
