// MD-inspired point-to-point workflow and ensemble runner (paper Sec. IV-C).
//
// Producer ranks emulate an MD simulation: `stride` steps of fixed-duration
// compute (with seeded relative jitter) per frame, then serialize and put the
// frame through a data-management connector.  Consumer ranks get the frame,
// deserialize, and emulate analytics for exactly one frame period.  An
// ensemble runs `pairs` independent producer-consumer pairs, placed either
// on a single node (DYAD/XFS) or split across producer nodes and consumer
// nodes (DYAD/Lustre), repeated `repetitions` times with different seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mdwf/common/rng.hpp"
#include "mdwf/common/stats.hpp"
#include "mdwf/fault/injector.hpp"
#include "mdwf/fs/interference.hpp"
#include "mdwf/md/models.hpp"
#include "mdwf/obs/counters.hpp"
#include "mdwf/obs/trace.hpp"
#include "mdwf/perf/thicket.hpp"
#include "mdwf/workflow/checkpoint.hpp"
#include "mdwf/workflow/connector.hpp"
#include "mdwf/workflow/testbed.hpp"

namespace mdwf::wload {
struct Dag;
}

namespace mdwf::workflow {

struct WorkloadConfig {
  md::MolecularModel model = md::kJac;
  // Steps between frames; defaults to the model's Table II stride.
  std::uint64_t stride = md::kJac.stride;
  std::uint64_t frames = 128;
  // Relative std-dev of per-frame MD compute time (rate variability).
  double step_jitter_sigma = 0.01;
  // Producers begin with a random offset uniform in [0, stagger *
  // frame_period): ensemble members are launched/equilibrated
  // independently, so their output phases are not aligned.  0 disables.
  double start_stagger = 1.0;
  // CPU throughput for frame (de)serialization.
  double serialize_bps = 4.0e9;

  // In-situ data reduction (paper Sec. II-B): producers compress frames
  // before the put, consumers decompress after the get.  Fewer bytes move
  // at the price of codec CPU on both sides — worthwhile when the data
  // path, not the CPU, is the bottleneck (see bench/ablation_reduction).
  bool compress = false;
  // Calibrated against md::compress_frame on synthetic frames.
  double compression_ratio = 1.9;
  double compress_bps = 1.2e9;
  double decompress_bps = 1.8e9;

  // Consumer analytics time as a multiple of the frame period.  1.0 keeps
  // the consumer exactly in step with production (paper Sec. IV-C); >1
  // models heavier in-situ analysis that falls behind the producer — the
  // regime where staging back-pressure and the spill path engage.
  double analytics_scale = 1.0;

  Duration frame_compute() const {
    return model.step_time() * static_cast<std::int64_t>(stride);
  }
  Duration analytics_time() const {
    return frame_compute() * analytics_scale;
  }
  Duration serialize_time() const {
    return Duration::seconds(
        static_cast<double>(model.frame_bytes().count()) / serialize_bps);
  }
  // Bytes that actually cross the data-management solution per frame.
  Bytes wire_bytes() const {
    if (!compress) return model.frame_bytes();
    return Bytes(static_cast<std::uint64_t>(
        static_cast<double>(model.frame_bytes().count()) /
        compression_ratio));
  }
  Duration compress_time() const {
    return compress ? Duration::seconds(
                          static_cast<double>(model.frame_bytes().count()) /
                          compress_bps)
                    : Duration::zero();
  }
  Duration decompress_time() const {
    return compress ? Duration::seconds(
                          static_cast<double>(model.frame_bytes().count()) /
                          decompress_bps)
                    : Duration::zero();
  }
};

// Frame file path for pair `pair` frame `f`, and the pair's path prefix
// (push-mode subscription key).
std::string frame_path(std::uint32_t pair, std::uint64_t f);
std::string pair_prefix(std::uint32_t pair);

// SLO-guard pacing hook (implemented by mdwf::tenant).  A rank with a hook
// reports its progress and fetch latencies and asks before each frame how
// long to hold production; everything defaults to a no-op so the classic
// single-workflow path is untouched.
class PacingHook {
 public:
  virtual ~PacingHook() = default;
  // Extra producer-side idle inserted before a frame's MD compute (the
  // "stagger frame production" degradation step).  Zero = full speed.
  virtual Duration producer_delay(std::uint64_t frame) {
    (void)frame;
    return Duration::zero();
  }
  // One consumer fetch completed with availability-relative latency
  // `latency_us` (same metric as RankContext::fetch_samples).
  virtual void on_fetch(TimePoint now, double latency_us) {
    (void)now;
    (void)latency_us;
  }
  virtual void on_frame_produced(std::uint64_t frame) { (void)frame; }
  virtual void on_frame_consumed(std::uint64_t frame) { (void)frame; }
};

// Per-rank recovery bookkeeping, filled in by the rank coroutines and summed
// into EnsembleResult counters.
struct RankStats {
  std::uint64_t frames_done = 0;      // distinct frames completed
  std::uint64_t reexecuted = 0;       // frame iterations redone after rollback
  std::uint64_t fault_retries = 0;    // same-frame retries after remote faults
  std::uint64_t crash_recoveries = 0; // rollback events (wait_up + restore)
};

// Everything one simulated rank needs: infrastructure handles, its slice of
// the workload, and (optionally) where its trace events land.  Passed by
// value into the rank coroutines — a context outlives nothing; the pointed-to
// objects must outlive the rank as before.
struct RankContext {
  sim::Simulation* sim = nullptr;
  Connector* connector = nullptr;
  perf::Recorder* recorder = nullptr;
  // Tracing (null = off): per-frame instants land on `track` via the
  // pre-interned `frame_marker` series ("f=<n>"); region spans are emitted
  // by the recorder itself (perf::Recorder::set_trace).
  obs::TraceSink* trace = nullptr;
  obs::TrackId track{};
  obs::InstantId frame_marker{};
  WorkloadConfig workload{};
  std::uint32_t pair = 0;
  // Path namespace prepended to every frame path ("" classic;
  // "<tenant>/" in multi-tenant runs so co-tenant frames never collide).
  std::string ns;
  // SLO pacing hook (null = none; see PacingHook).
  PacingHook* pacing = nullptr;
  Rng rng{1};  // producers only; consumers draw nothing
  // --- Crash/restart model (PR 3); all null/zero = healthy-cluster loop.
  // Compute node the rank runs on (whose crash kills it).
  std::uint32_t node = 0;
  // Non-null when the fault plan has crash windows: the rank runs its
  // crash-aware loop (epoch checks, wait_up, checkpoint rollback).
  fault::CrashMonitor* crash = nullptr;
  // Progress record to roll back to; null = restart re-executes everything.
  Checkpoint* checkpoint = nullptr;
  RankStats* stats = nullptr;
  // Non-null when faults are injected: compute bursts stretch by the
  // injector's current CPU dilation for this node (kSlowNode windows).
  fault::FaultInjector* injector = nullptr;
  // --- Membership plane (PR 9); all null/zero = classic park-forever
  // recovery.  With a plane, a rank whose home node is declared lost
  // migrates: it re-homes via wait_recover_or_migrate, rolls back to the
  // pair-min checkpoint, and rebinds its node-local resources through
  // `rebuild`.
  membership::MembershipPlane* membership = nullptr;
  std::uint32_t member_rank = 0;       // this rank's plane registration
  std::uint32_t peer_member_rank = 0;  // the pair's other end
  // Node the pair's other rank started on (consumer park logic: a peer on
  // a permanently-lost node can never re-supply frames without a plane).
  std::uint32_t peer_node = 0;
  // Peer rank's progress record, for the pair-min coordinated rollback: a
  // migrated producer re-produces everything its consumer has not durably
  // consumed (the lost node's copies are unreachable).
  Checkpoint* peer_checkpoint = nullptr;
  // Rebuilds this rank's node-bound resources (connector, subscriptions,
  // checkpoint home) on the new node and returns the replacement connector.
  std::function<Connector*(std::uint32_t node, std::uint64_t restart)>
      rebuild;
  // Consumers only (non-null = record): per-frame get() latency in
  // microseconds, the distribution behind the frame-fetch P99.
  Samples* fetch_samples = nullptr;
  // Shared per-pair frame publication times (index = frame).  The producer
  // stamps each frame when its put completes; the consumer measures fetch
  // latency from max(request, publish) so the metric is the cost of
  // *moving* an available frame — a consumer idling ahead of a slow
  // producer is not a slow fetch (the closed-loop variant of coordinated
  // omission: an unmitigated-slow consumer never arrives early, so raw
  // wall-clock would flatter exactly the configurations without health).
  std::vector<TimePoint>* publish_times = nullptr;
};

// One producer rank: regions md_compute / serialize / produce /
// producer_sync (plus fault_retry / crash_restart when recovering).
sim::Task<void> run_producer(RankContext ctx);

// One consumer rank: regions consume / deserialize / analytics (plus
// fault_retry / crash_restart when recovering).
sim::Task<void> run_consumer(RankContext ctx);

// Where consumer ranks live relative to their producers:
//   kSplit     - producers on the first nodes/2 nodes, consumers on the
//                rest (the paper's multi-node setup; "in transit");
//   kColocated - each pair's two ranks share a node ("in situ"), available
//                for DYAD/XFS on any node count.
enum class Placement { kSplit, kColocated };

struct EnsembleConfig {
  Solution solution = Solution::kDyad;
  std::uint32_t pairs = 1;
  // 1 = single node; otherwise per `placement` (paper Sec. IV-C).
  std::uint32_t nodes = 1;
  Placement placement = Placement::kSplit;
  WorkloadConfig workload{};
  std::uint32_t repetitions = 10;
  std::uint64_t base_seed = 1;
  // Worker threads to fan the seeded repetitions across (0 = all hardware
  // threads).  Honored by the parallel runner (mdwf::sweep); the library
  // run_ensemble below is single-threaded and ignores it.  Output is
  // byte-identical for every thread count: each repetition runs in an
  // isolated Simulation and results fold in repetition order.
  std::uint32_t threads = 1;
  // Background load on the Lustre OSTs (other cluster tenants).
  bool lustre_interference = false;
  fs::InterferenceParams interference{};
  TestbedParams testbed{};
  // Per-rank progress records (auto-enabled when the fault plan has crash
  // windows; see CheckpointParams::Mode).
  CheckpointParams checkpoint{};
  // When non-empty, the first repetition is traced and exported here as
  // Chrome trace-event JSON (plus a <path>.metrics.csv sibling).  Only rep 0
  // is recorded: each repetition is an independent simulation with its own
  // time origin, so overlaying them in one timeline would be misleading.
  std::string trace_path;

  // --- DAG workload (mdwf::wload; PR 10).  Non-null routes run_repetition
  // to the dependency-driven executor in dag_run.cpp: one rank per task,
  // one connector pair per edge; `pairs`, `frames`, `placement`, `model`,
  // and `checkpoint` do not apply.  Null keeps the classic fixed pipeline
  // on its exact previous code path.
  std::shared_ptr<const wload::Dag> dag;
  // A task's output payload is cut into ceil(bytes / dag_chunk) frames per
  // out-edge; smaller chunks stream earlier but pay more per-frame cost.
  Bytes dag_chunk = Bytes::mib(32);
  // Multiplier on every imported task runtime (scale a real trace down to
  // simulation-friendly durations without editing the instance).
  double dag_runtime_scale = 1.0;
};

struct EnsembleResult {
  // Per-repetition means of per-frame time, microseconds.
  Samples prod_movement_us;
  Samples prod_idle_us;
  Samples cons_movement_us;
  Samples cons_idle_us;
  Samples makespan_s;
  // Per-frame consumer get() latency across all pairs and repetitions, in
  // microseconds; quantile(0.99) is the frame-fetch P99 the gray-failure
  // acceptance criteria compare.
  Samples cons_fetch_us;

  // All per-rank call trees across repetitions, tagged with metadata
  // (solution, role, rep, pair).
  perf::Thicket thicket;

  // Named counters summed over ranks and repetitions, in registration order
  // (DYAD protocol counters first, then infrastructure totals).  Look up
  // specific counters with counters.get("name"); unregistered names return 0,
  // so absent subsystems (stream counters on a dyad run, integrity off) read
  // naturally as zero.
  obs::CounterMap counters;

  double mean_production_us() const {
    return prod_movement_us.mean() + prod_idle_us.mean();
  }
  double mean_consumption_us() const {
    return cons_movement_us.mean() + cons_idle_us.mean();
  }
};

// Runs the configured ensemble (repetitions x pairs) and aggregates.
EnsembleResult run_ensemble(const EnsembleConfig& config);

// --- Single-repetition building blocks (run_ensemble and mdwf::sweep) ----
//
// run_ensemble(config) is exactly:
//
//   EnsembleResult r = make_ensemble_result();
//   for (rep = 0; rep < config.repetitions; ++rep)
//     fold_repetition(r, run_repetition(config, rep, rep == 0 ? sink : null));
//
// Each repetition runs in its own Simulation/Testbed with seeds derived only
// from (base_seed, rep), so repetitions may execute concurrently on worker
// threads; folding outcomes in repetition order reproduces the serial result
// byte-for-byte.  mdwf::sweep::run_ensemble is that parallel driver.

// Everything one repetition contributes to the aggregate.
struct RepOutcome {
  // Per-pair means of per-frame time, microseconds.
  double prod_movement_us = 0.0;
  double prod_idle_us = 0.0;
  double cons_movement_us = 0.0;
  double cons_idle_us = 0.0;
  double makespan_s = 0.0;
  // Per-frame consumer fetch latencies in simulation-event order.
  Samples cons_fetch_us;
  // This repetition's call trees (pair-major, producer before consumer).
  perf::Thicket thicket;
  // Same registration order as EnsembleResult::counters.
  obs::CounterMap counters;
};

// Runs repetition `rep` of the configured ensemble in an isolated
// Simulation.  `trace` non-null records this repetition's timeline (the
// aggregate runners pass it for rep 0 only).  Thread-safe with respect to
// other run_repetition calls.
RepOutcome run_repetition(const EnsembleConfig& config, std::uint32_t rep,
                          obs::TraceSink* trace = nullptr);

// An empty EnsembleResult with every counter pre-registered, so column
// order is stable across solutions and fault plans.
EnsembleResult make_ensemble_result();

// Folds one repetition's outcome into the aggregate (must be called in
// repetition order for byte-identical samples/thicket ordering).
void fold_repetition(EnsembleResult& into, RepOutcome rep);

// --- Rank-set building blocks (one Testbed, N workflows) ------------------
//
// run_repetition instantiates exactly one rank-set covering the whole
// testbed; mdwf::tenant places several disjoint rank-sets — one per tenant —
// on a shared testbed.  The classic path goes through the same builder with
// the defaults below, so there is one rank wiring to maintain.

// Builds one pair's connector; `consumer` distinguishes the two ends.  Null
// factory = make_connector(spec) (the solution's standard connector).
using ConnectorFactory = std::function<std::unique_ptr<Connector>(
    const ConnectorSpec& spec, std::uint32_t pair, bool consumer)>;

// One workflow's slice of a testbed: `pairs` producer-consumer pairs packed
// onto compute nodes [node_base, node_base + nodes).
struct RankSetSpec {
  Solution solution = Solution::kDyad;
  std::uint32_t pairs = 1;
  std::uint32_t node_base = 0;
  std::uint32_t nodes = 1;
  Placement placement = Placement::kSplit;
  WorkloadConfig workload{};
  CheckpointParams checkpoint{};
  // Run the crash-aware rank loops; the caller decides (globally for the
  // classic path, per tenant for co-tenant runs whose neighbor crashes).
  bool crash_aware = false;
  // Path namespace ("" classic; "<tenant>/" in multi-tenant runs) applied
  // to frame paths, checkpoint paths, and push-mode subscriptions alike.
  std::string ns;
  // Rng fork scope prepended to the per-pair tags ("" classic, so a solo
  // tenant reproduces the classic seed stream bit-for-bit).
  std::string rng_scope;
  // Trace process prefix ("" = classic per-node "node<N>" processes;
  // "<tenant>" labels them "<tenant>/node<N>").
  std::string trace_process;
  // SLO pacing hook shared by every rank of the set (null = none).
  PacingHook* pacing = nullptr;
  // Connector override (per-tenant fallback ladders); null = standard.
  ConnectorFactory connectors;
};

// Everything a rank-set's coroutines reference.  The caller declares this
// BEFORE the Testbed (same unwind-order contract as run_repetition: dying
// coroutines close regions against the recorders) and keeps it alive until
// the simulation has quiesced.
struct RankSetAssets {
  std::vector<std::unique_ptr<perf::Recorder>> prod_recs;
  std::vector<std::unique_ptr<perf::Recorder>> cons_recs;
  std::vector<std::unique_ptr<ExplicitSync>> syncs;
  std::vector<std::unique_ptr<Connector>> prod_conn;
  std::vector<std::unique_ptr<Connector>> cons_conn;
  std::vector<std::unique_ptr<Checkpoint>> ckpts;
  std::vector<std::unique_ptr<std::vector<TimePoint>>> pub_times;
  std::vector<RankStats> stats;        // 2*pairs: producer, then consumer
  std::vector<sim::Task<void>> tasks;  // pair-major: producer, consumer
  // Connectors replaced by a rank migration, kept alive (frames in flight
  // may still unwind through them) and tagged so collect_rank_set can fold
  // their pre-migration counters in.
  struct RetiredConnector {
    std::uint32_t pair = 0;
    bool consumer = false;
    std::unique_ptr<Connector> conn;
  };
  std::vector<RetiredConnector> retired_conn;
};

// Wires one rank-set onto `tb`: recorders, connectors, syncs, checkpoints,
// subscriptions, trace lanes, and the (not yet spawned) rank tasks, in the
// exact order the classic runner used.  `crash` non-null switches ranks to
// their crash-aware loops; `fetch_samples` non-null records consumer fetch
// latencies.
void build_rank_set(Testbed& tb, const RankSetSpec& spec, const Rng& set_rng,
                    fault::CrashMonitor* crash, Samples* fetch_samples,
                    RankSetAssets& assets);

// Aggregates the set's own contribution into `out`: per-pair means, thicket
// rows (tagged with `meta_extra` on top of the standard keys), per-pair and
// per-node counters over the set's node range, checkpoint totals.
void collect_rank_set(Testbed& tb, const RankSetSpec& spec,
                      RankSetAssets& assets, std::uint32_t rep,
                      const perf::Metadata& meta_extra, RepOutcome& out);

// Shared-service totals counted once per repetition regardless of how many
// rank-sets ran: KVS, Lustre (including its torn writes), network, crash
// windows, integrity ledger, fault windows, simulation events.
void collect_shared(Testbed& tb, std::uint64_t events_fired, RepOutcome& out);

// Pre-registers the standard ensemble counters (the stable column order).
void register_ensemble_counters(obs::CounterMap& counters);

}  // namespace mdwf::workflow
