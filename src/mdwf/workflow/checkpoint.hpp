// Workflow checkpoint/restart (PR 3 crash-consistency model).
//
// Each rank owns a `Checkpoint`: a small progress record ("N frames
// complete") on the rank's node-local filesystem, rewritten every
// `interval` completed frames and made power-loss safe with an fsync
// barrier.  After a node crash the restarted rank calls `restore()` and
// re-executes only the frames produced/consumed since the last durable
// record — the recovery cost the resilience benchmarks measure.
//
// A record is only counted durable if the node's crash epoch did not change
// while the write+fsync was in flight: a crash racing the barrier drops the
// dirty record pages, so the previous record is what survives.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "mdwf/common/bytes.hpp"
#include "mdwf/fault/injector.hpp"
#include "mdwf/fs/local_fs.hpp"
#include "mdwf/sim/simulation.hpp"
#include "mdwf/sim/task.hpp"

namespace mdwf::workflow {

struct CheckpointParams {
  // kAuto: checkpointing turns on iff the fault plan has crash windows.
  enum class Mode { kAuto, kOn, kOff };
  Mode mode = Mode::kAuto;
  // Persist every N completed frames (1 = after every frame).
  std::uint64_t interval = 1;
  // One progress record: frame high-water mark plus rank metadata.
  Bytes record_size = Bytes::kib(4);

  bool resolve_enabled(bool crash_windows) const {
    if (mode == Mode::kOn) return true;
    if (mode == Mode::kOff) return false;
    return crash_windows;
  }
};

class Checkpoint {
 public:
  // `monitor`/`node` guard the persist against a racing crash; pass
  // monitor = nullptr when no crash model is active (records then always
  // count, as nothing can drop them).
  Checkpoint(sim::Simulation& sim, fs::LocalFs& fs, std::string path,
             const CheckpointParams& params,
             fault::CrashMonitor* monitor = nullptr, std::uint32_t node = 0)
      : sim_(&sim),
        fs_(&fs),
        path_(std::move(path)),
        params_(params),
        monitor_(monitor),
        node_(node) {}

  // Persist "frames complete = `frames_done`" if the interval says so.
  // Charges the record write + fsync; a crash window racing the barrier
  // (I/O error, or an epoch bump mid-flight) loses the record, never the
  // run.
  sim::Task<void> persist(std::uint64_t frames_done);

  // Rank restart: roll back to the last durable record.
  std::uint64_t restore() {
    ++restores_;
    return durable_;
  }

  // Rank migration (mdwf::membership): rebind the record to the new home
  // node's local filesystem and roll progress back to `restart` — the
  // pair-min coordinated rollback (min of both ranks' durable records), so
  // the migrated producer re-produces everything its consumer still needs.
  // The old node's record is unreachable from the new home, hence the
  // fresh inode on the next persist.
  void migrate(fs::LocalFs& fs, std::uint32_t node, std::uint64_t restart) {
    fs_ = &fs;
    node_ = node;
    ino_.reset();
    durable_ = std::min(durable_, restart);
  }

  std::uint64_t durable() const { return durable_; }
  std::uint64_t persists() const { return persists_; }
  std::uint64_t restores() const { return restores_; }

 private:
  sim::Simulation* sim_;
  fs::LocalFs* fs_;
  std::string path_;
  CheckpointParams params_;
  fault::CrashMonitor* monitor_;
  std::uint32_t node_;
  std::optional<fs::InodeId> ino_;
  std::uint64_t durable_ = 0;
  std::uint64_t persists_ = 0;
  std::uint64_t restores_ = 0;
};

}  // namespace mdwf::workflow
