#include "mdwf/workflow/dag_run.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "mdwf/common/assert.hpp"
#include "mdwf/wload/wload.hpp"

namespace mdwf::workflow {

std::string dag_frame_path(std::uint32_t edge, std::uint64_t f) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "dag%04u/frame%05llu", edge,
                static_cast<unsigned long long>(f));
  return buf;
}

std::string dag_edge_prefix(std::uint32_t edge) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "dag%04u/", edge);
  return buf;
}

DagPlan plan_dag(const wload::Dag& dag, Bytes chunk, std::uint32_t nodes) {
  MDWF_ASSERT_MSG(chunk.count() > 0, "dag chunk size must be positive");
  MDWF_ASSERT_MSG(nodes >= 1, "dag plan needs at least one node");
  const std::size_t n = dag.tasks.size();
  DagPlan plan;
  plan.in_edges.resize(n);
  plan.out_edges.resize(n);
  plan.node_of.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    // Round-robin placement in topological order: siblings spread across
    // nodes, so wide layers actually exercise the network paths.
    plan.node_of[t] = static_cast<std::uint32_t>(t % nodes);
  }
  // Canonical edge order: child-major, parents ascending (validate() sorts
  // both), so edge ids are reproducible from the Dag alone.
  for (std::size_t c = 0; c < n; ++c) {
    for (const std::uint32_t p : dag.tasks[c].parents) {
      const Bytes payload = dag.tasks[p].output_bytes;
      DagEdgePlan e;
      e.parent = p;
      e.child = static_cast<std::uint32_t>(c);
      e.frames = std::max<std::uint64_t>(
          1, (payload.count() + chunk.count() - 1) / chunk.count());
      e.frame_bytes = Bytes(std::max<std::uint64_t>(
          1, (payload.count() + e.frames - 1) / e.frames));
      const auto id = static_cast<std::uint32_t>(plan.edges.size());
      plan.in_edges[c].push_back(id);
      plan.out_edges[p].push_back(id);
      plan.total_edge_frames += e.frames;
      plan.edges.push_back(e);
    }
  }
  return plan;
}

namespace {

// Same remote-fault retry policy as the classic rank loops.
constexpr Duration kFaultRetryBackoff = Duration::milliseconds(50);
constexpr std::uint64_t kMaxFaultRetries = 10'000;

// One side of one edge, from the owning task's point of view.
struct DagRankIo {
  Connector* conn = nullptr;
  std::vector<TimePoint>* pub = nullptr;  // per-frame publish stamps
  std::uint32_t peer_node = 0;            // the edge's other end
};

struct DagTaskContext {
  sim::Simulation* sim = nullptr;
  const wload::TaskSpec* spec = nullptr;
  const DagPlan* plan = nullptr;
  std::uint32_t task = 0;
  perf::Recorder* recorder = nullptr;
  std::vector<DagRankIo> in;   // aligned with plan->in_edges[task]
  std::vector<DagRankIo> out;  // aligned with plan->out_edges[task]
  obs::TraceSink* trace = nullptr;
  obs::TrackId track{};
  obs::InstantId frame_marker{};
  Rng rng{1};
  std::uint32_t node = 0;
  fault::CrashMonitor* crash = nullptr;
  fault::FaultInjector* injector = nullptr;
  RankStats* prod_stats = nullptr;  // publish units
  RankStats* cons_stats = nullptr;  // fetch units
  Samples* fetch_samples = nullptr;
  double runtime_scale = 1.0;
  double analytics_scale = 1.0;
  double jitter_sigma = 0.0;
  double stagger = 1.0;
  DagProbe* probe = nullptr;
};

std::uint64_t rank_epoch(const DagTaskContext& ctx) {
  return ctx.crash != nullptr ? ctx.crash->epoch(ctx.node) : 0;
}

double cpu_dilation(const DagTaskContext& ctx) {
  return ctx.injector != nullptr ? ctx.injector->cpu_dilation(ctx.node) : 1.0;
}

// See ensemble.cpp: without a membership plane, a peer on a permanently
// lost node can never move frames again — park instead of polling forever.
bool park_on_lost_peer(const DagTaskContext& ctx, std::uint32_t peer) {
  return ctx.injector != nullptr && ctx.crash != nullptr &&
         ctx.crash->down(peer) && ctx.injector->node_lost(peer);
}

void count_frame(RankStats* stats, std::uint64_t f, std::uint64_t& high) {
  if (f < high) {
    if (stats != nullptr) ++stats->reexecuted;
  } else {
    high = f + 1;
    if (stats != nullptr) ++stats->frames_done;
  }
}

void trace_frame(const DagTaskContext& ctx, std::uint64_t unit) {
  if (ctx.trace == nullptr) return;
  ctx.trace->instant(ctx.frame_marker, ctx.sim->now(),
                     static_cast<std::int64_t>(unit));
}

// One workflow task: fetch every parent frame (in-edge order), run the
// compute budget, publish every output frame to every out-edge, then drain
// the manual-sync barriers.  Crash-aware but checkpoint-free: an epoch
// change restarts the whole task; idempotent connectors make that safe.
sim::Task<void> run_dag_task(DagTaskContext ctx) {
  auto& sim = *ctx.sim;
  auto& rec = *ctx.recorder;
  const auto& in_ids = ctx.plan->in_edges[ctx.task];
  const auto& out_ids = ctx.plan->out_edges[ctx.task];

  std::uint64_t in_total = 0;
  std::vector<std::uint64_t> in_base(in_ids.size(), 0);  // linear unit base
  for (std::size_t i = 0; i < in_ids.size(); ++i) {
    in_base[i] = in_total;
    in_total += ctx.plan->edges[in_ids[i]].frames;
  }
  // Every out-edge of a task carries the same frame sequence.
  const std::uint64_t out_frames =
      out_ids.empty() ? 0 : ctx.plan->edges[out_ids[0]].frames;

  const Duration runtime = ctx.spec->runtime * ctx.runtime_scale;
  const bool both = !in_ids.empty() && !out_ids.empty();
  const Duration fetch_budget =
      in_ids.empty() ? Duration::zero() : (both ? runtime * 0.5 : runtime);
  const Duration produce_budget =
      out_ids.empty() ? Duration::zero() : (both ? runtime * 0.5 : runtime);
  const Duration analytics_slice =
      in_total == 0 ? Duration::zero()
                    : (fetch_budget * (1.0 / static_cast<double>(in_total))) *
                          ctx.analytics_scale;
  const Duration compute_slice =
      out_frames == 0
          ? Duration::zero()
          : produce_budget * (1.0 / static_cast<double>(out_frames));

  if (in_ids.empty() && !out_ids.empty() && ctx.stagger > 0.0) {
    // Source tasks start with a launch/equilibration offset, like the
    // classic producers; downstream tasks are desynchronized by their
    // inputs' arrival instead.
    co_await sim.delay(compute_slice *
                       (ctx.stagger * ctx.rng.next_double()));
  }

  std::uint64_t cons_high = 0;
  std::uint64_t prod_high = 0;
  for (bool completed = false; !completed;) {
    const std::uint64_t run_epoch = rank_epoch(ctx);
    bool crashed = false;

    // ---- Fetch phase: a task is runnable per-frame — analytics overlap
    // the parents still publishing, exactly like the classic consumer.
    for (std::size_t ei = 0; ei < in_ids.size() && !crashed; ++ei) {
      const DagEdgePlan& e = ctx.plan->edges[in_ids[ei]];
      const DagRankIo& io = ctx.in[ei];
      for (std::uint64_t f = 0; f < e.frames && !crashed; ++f) {
        const std::uint64_t unit = in_base[ei] + f;
        const TimePoint fetch_start = sim.now();
        for (std::uint64_t attempts = 0;; ++attempts) {
          std::exception_ptr failure;
          try {
            perf::ScopedRegion consume(rec, "consume");
            co_await io.conn->get(dag_frame_path(in_ids[ei], f),
                                  e.frame_bytes, f);
          } catch (const net::NetError&) {
            failure = std::current_exception();
          } catch (const storage::IoError&) {
            failure = std::current_exception();
          } catch (const fs::FsError&) {
            failure = std::current_exception();
          }
          if (failure == nullptr) {
            // Availability-relative fetch latency, the same metric as the
            // classic consumer (see RankContext::publish_times); skipped
            // when the producer's stamp is missing.
            if (ctx.fetch_samples != nullptr) {
              const TimePoint pub = (*io.pub)[f];
              if (pub != TimePoint::origin()) {
                const TimePoint avail = std::max(fetch_start, pub);
                ctx.fetch_samples->add((sim.now() - avail).to_micros());
              }
            }
            break;
          }
          if (ctx.crash == nullptr || attempts >= kMaxFaultRetries) {
            std::rethrow_exception(failure);
          }
          if (rank_epoch(ctx) != run_epoch) break;
          if (ctx.cons_stats != nullptr) ++ctx.cons_stats->fault_retries;
          perf::ScopedRegion wait(rec, "fault_retry",
                                  perf::Category::kIdle);
          if (park_on_lost_peer(ctx, io.peer_node)) {
            co_await ctx.crash->wait_up(io.peer_node);
          } else {
            co_await sim.delay(kFaultRetryBackoff);
          }
        }
        if (ctx.crash != nullptr && rank_epoch(ctx) != run_epoch) {
          crashed = true;
          break;
        }
        trace_frame(ctx, unit);
        if (ctx.probe != nullptr) {
          ctx.probe->on_fetch(ctx.task, in_ids[ei], f, sim.now());
        }
        if (!analytics_slice.is_zero()) {
          perf::ScopedRegion ana(rec, "analytics",
                                 perf::Category::kCompute);
          co_await sim.delay(analytics_slice * cpu_dilation(ctx));
        }
        io.conn->acknowledge(f);
        count_frame(ctx.cons_stats, unit, cons_high);
      }
    }

    // ---- Compute + publish phase.
    if (!crashed && in_ids.empty() && out_ids.empty() &&
        !runtime.is_zero()) {
      // Isolated task: pure compute, no movement.
      perf::ScopedRegion compute(rec, "md_compute",
                                 perf::Category::kCompute);
      co_await sim.delay(runtime * cpu_dilation(ctx));
    }
    for (std::uint64_t f = 0; f < out_frames && !crashed; ++f) {
      {
        perf::ScopedRegion compute(rec, "md_compute",
                                   perf::Category::kCompute);
        const double jitter =
            std::max(-0.5, ctx.rng.normal(0.0, ctx.jitter_sigma));
        co_await sim.delay(compute_slice *
                           ((1.0 + jitter) * cpu_dilation(ctx)));
      }
      for (std::size_t oi = 0; oi < out_ids.size() && !crashed; ++oi) {
        const DagEdgePlan& e = ctx.plan->edges[out_ids[oi]];
        const DagRankIo& io = ctx.out[oi];
        const std::uint64_t unit = f * out_ids.size() + oi;
        for (std::uint64_t attempts = 0;; ++attempts) {
          std::exception_ptr failure;
          try {
            perf::ScopedRegion produce(rec, "produce");
            co_await io.conn->put(dag_frame_path(out_ids[oi], f),
                                  e.frame_bytes, f);
            (*io.pub)[f] = sim.now();
          } catch (const net::NetError&) {
            failure = std::current_exception();
          } catch (const storage::IoError&) {
            failure = std::current_exception();
          } catch (const fs::FsError&) {
            failure = std::current_exception();
          }
          if (failure == nullptr) break;
          if (ctx.crash == nullptr || attempts >= kMaxFaultRetries) {
            std::rethrow_exception(failure);
          }
          if (rank_epoch(ctx) != run_epoch) break;
          if (ctx.prod_stats != nullptr) ++ctx.prod_stats->fault_retries;
          perf::ScopedRegion wait(rec, "fault_retry",
                                  perf::Category::kIdle);
          if (park_on_lost_peer(ctx, io.peer_node)) {
            co_await ctx.crash->wait_up(io.peer_node);
          } else {
            co_await sim.delay(kFaultRetryBackoff);
          }
        }
        if (ctx.crash != nullptr && rank_epoch(ctx) != run_epoch) {
          crashed = true;
          break;
        }
        trace_frame(ctx, in_total + unit);
        if (ctx.probe != nullptr) {
          ctx.probe->on_publish(ctx.task, out_ids[oi], f, sim.now());
        }
        count_frame(ctx.prod_stats, unit, prod_high);
      }
    }

    // ---- End-of-edge barriers (manual-sync solutions): wait for every
    // child to drain this task's frames.  The classic per-frame
    // producer_sync would deadlock on diamond graphs, so the producer-side
    // serialization moves to one barrier per edge; the consumer-side
    // per-frame wait (the explicit_sync idle) is untouched.
    for (std::size_t oi = 0; oi < out_ids.size() && !crashed; ++oi) {
      const DagEdgePlan& e = ctx.plan->edges[out_ids[oi]];
      co_await ctx.out[oi].conn->producer_sync(e.frames - 1);
      if (ctx.crash != nullptr && rank_epoch(ctx) != run_epoch) {
        crashed = true;
      }
    }

    // A crash during a pure-compute stretch raises no exception; the
    // epoch check here catches it before the task declares itself done.
    if (!crashed && ctx.crash != nullptr &&
        rank_epoch(ctx) != run_epoch) {
      crashed = true;
    }
    if (!crashed) {
      completed = true;
      continue;
    }
    {
      perf::ScopedRegion down(rec, "crash_restart", perf::Category::kIdle);
      co_await ctx.crash->wait_up(ctx.node);
    }
    RankStats* restart_stats =
        !in_ids.empty() ? ctx.cons_stats : ctx.prod_stats;
    if (restart_stats != nullptr) ++restart_stats->crash_recoveries;
  }
  if (ctx.probe != nullptr) ctx.probe->on_complete(ctx.task, sim.now());
}

sim::Task<void> run_all_and_mark(sim::Simulation& sim,
                                 std::vector<sim::Task<void>> tasks,
                                 TimePoint& end) {
  co_await sim::all(sim, std::move(tasks));
  end = sim.now();
}

double per_frame_us(const perf::CallTree& tree, std::string_view subtree,
                    perf::Category cat, std::uint64_t frames) {
  return tree.category_time(subtree, cat).to_micros() /
         static_cast<double>(frames);
}

// Everything the DAG rank coroutines reference; declared before the
// Testbed (the run_repetition unwind-order contract).
struct DagAssets {
  std::vector<std::unique_ptr<perf::Recorder>> recs;  // per task
  std::vector<std::unique_ptr<ExplicitSync>> syncs;
  std::vector<std::unique_ptr<Connector>> prod_conn;  // per edge
  std::vector<std::unique_ptr<Connector>> cons_conn;  // per edge
  std::vector<std::unique_ptr<std::vector<TimePoint>>> pub_times;  // per edge
  std::vector<RankStats> stats;  // 2 per task: publish units, fetch units
  std::vector<sim::Task<void>> tasks;
};

}  // namespace

RepOutcome run_dag_repetition(const EnsembleConfig& config, std::uint32_t rep,
                              obs::TraceSink* trace, DagProbe* probe) {
  MDWF_ASSERT_MSG(config.dag != nullptr,
                  "run_dag_repetition needs a DAG workload");
  const wload::Dag& dag = *config.dag;
  MDWF_ASSERT(config.nodes >= 1);
  MDWF_ASSERT_MSG(config.solution != Solution::kXfs || config.nodes == 1,
                  "XFS cannot move data between nodes (paper Sec. III-B)");
  MDWF_ASSERT_MSG(!config.testbed.membership.enabled,
                  "membership plane does not support DAG workloads");

  RepOutcome out;
  register_ensemble_counters(out.counters);
  {
    TestbedParams tp = config.testbed;
    tp.compute_nodes = config.nodes;
    tp.integrity.seed = config.base_seed + rep * 7919;
    tp.trace = trace;

    const DagPlan plan = plan_dag(dag, config.dag_chunk, config.nodes);
    const std::size_t ntasks = dag.tasks.size();

    DagAssets assets;
    Testbed tb(tp);
    auto& sim = tb.simulation();
    obs::TraceSink* sink = tb.params().trace;

    fault::CrashMonitor* crash = nullptr;
    if (tb.fault_injector() != nullptr &&
        tb.fault_injector()->has_crash_windows()) {
      crash = &tb.fault_injector()->monitor();
    }

    const Rng rep_rng(config.base_seed + rep);
    assets.stats.assign(2 * ntasks, RankStats{});
    for (std::size_t t = 0; t < ntasks; ++t) {
      assets.recs.push_back(std::make_unique<perf::Recorder>(
          sim, "task" + std::to_string(t)));
    }

    // Per-edge movement plumbing: producer-side connector at the parent's
    // node, consumer-side at the child's, sharing one level-triggered sync
    // (manual-sync solutions) and one publish-stamp vector.
    for (std::size_t e = 0; e < plan.edges.size(); ++e) {
      const DagEdgePlan& ep = plan.edges[e];
      const std::uint32_t pnode = plan.node_of[ep.parent];
      const std::uint32_t cnode = plan.node_of[ep.child];
      ExplicitSync* sync = nullptr;
      if (config.solution == Solution::kXfs ||
          config.solution == Solution::kLustre) {
        assets.syncs.push_back(std::make_unique<ExplicitSync>(sim));
        sync = assets.syncs.back().get();
      }
      const ConnectorSpec pspec{.testbed = &tb,
                                .solution = config.solution,
                                .node = pnode,
                                .sync = sync,
                                .recorder = assets.recs[ep.parent].get()};
      const ConnectorSpec cspec{.testbed = &tb,
                                .solution = config.solution,
                                .node = cnode,
                                .sync = sync,
                                .recorder = assets.recs[ep.child].get()};
      assets.prod_conn.push_back(make_connector(pspec));
      assets.cons_conn.push_back(make_connector(cspec));
      if (config.solution == Solution::kDyad &&
          tb.params().dyad.push_mode) {
        tb.dyad_domain().subscribe(
            dag_edge_prefix(static_cast<std::uint32_t>(e)),
            net::NodeId{cnode});
      }
      if (config.solution == Solution::kStream) {
        tb.stream_domain().subscribe(
            dag_edge_prefix(static_cast<std::uint32_t>(e)),
            net::NodeId{cnode});
      }
      assets.pub_times.push_back(std::make_unique<std::vector<TimePoint>>(
          ep.frames, TimePoint::origin()));
    }

    for (std::size_t t = 0; t < ntasks; ++t) {
      DagTaskContext ctx;
      ctx.sim = &sim;
      ctx.spec = &dag.tasks[t];
      ctx.plan = &plan;
      ctx.task = static_cast<std::uint32_t>(t);
      ctx.recorder = assets.recs[t].get();
      for (const std::uint32_t e : plan.in_edges[t]) {
        ctx.in.push_back(DagRankIo{assets.cons_conn[e].get(),
                                   assets.pub_times[e].get(),
                                   plan.node_of[plan.edges[e].parent]});
      }
      for (const std::uint32_t e : plan.out_edges[t]) {
        ctx.out.push_back(DagRankIo{assets.prod_conn[e].get(),
                                    assets.pub_times[e].get(),
                                    plan.node_of[plan.edges[e].child]});
      }
      ctx.rng = rep_rng.fork("dag-task" + std::to_string(t));
      ctx.node = plan.node_of[t];
      ctx.crash = crash;
      ctx.injector = tb.fault_injector();
      ctx.prod_stats = &assets.stats[2 * t];
      ctx.cons_stats = &assets.stats[2 * t + 1];
      ctx.fetch_samples = &out.cons_fetch_us;
      ctx.runtime_scale = config.dag_runtime_scale;
      ctx.analytics_scale = config.workload.analytics_scale;
      ctx.jitter_sigma = config.workload.step_jitter_sigma;
      ctx.stagger = config.workload.start_stagger;
      ctx.probe = probe;
      if (sink != nullptr) {
        ctx.trace = sink;
        ctx.track = sink->track("node" + std::to_string(ctx.node),
                                "task" + std::to_string(t));
        ctx.frame_marker = sink->instant_series(ctx.track, "f=");
        assets.recs[t]->set_trace(sink, ctx.track);
      }
      assets.tasks.push_back(run_dag_task(std::move(ctx)));
    }

    TimePoint workload_end;
    sim.spawn(run_all_and_mark(sim, std::move(assets.tasks), workload_end));
    const std::uint64_t events_fired = sim.run_to_quiescence();
    if (tb.fault_injector() != nullptr) tb.fault_injector()->finalize_trace();

    // ---- Collect: same counter names and thicket shape as the classic
    // collector, with tasks in place of pairs.
    double pm = 0, pi = 0, cm = 0, ci = 0;
    std::uint32_t nprod = 0, ncons = 0;
    for (std::size_t t = 0; t < ntasks; ++t) {
      const auto& tree = assets.recs[t]->tree();
      std::uint64_t in_units = 0;
      for (const std::uint32_t e : plan.in_edges[t]) {
        in_units += plan.edges[e].frames;
      }
      const std::uint64_t out_units =
          plan.out_edges[t].empty()
              ? 0
              : plan.edges[plan.out_edges[t][0]].frames *
                    plan.out_edges[t].size();
      if (out_units > 0) {
        pm += per_frame_us(tree, "produce", perf::Category::kMovement,
                           out_units);
        pi += per_frame_us(tree, "produce", perf::Category::kIdle,
                           out_units);
        ++nprod;
      }
      if (in_units > 0) {
        cm += per_frame_us(tree, "consume", perf::Category::kMovement,
                           in_units);
        ci += per_frame_us(tree, "consume", perf::Category::kIdle, in_units);
        ++ncons;
      }
      perf::Metadata meta{
          {"solution", std::string(to_string(config.solution))},
          {"rep", std::to_string(rep)},
          {"task", dag.tasks[t].id},
          {"tasks", std::to_string(ntasks)},
          {"nodes", std::to_string(config.nodes)},
          {"workflow", dag.name},
          {"role", "task"},
      };
      out.thicket.add(meta, assets.recs[t]->snapshot());

      out.counters.add("frames_produced", assets.stats[2 * t].frames_done);
      out.counters.add("frames_consumed",
                       assets.stats[2 * t + 1].frames_done);
      out.counters.add("frames_reexecuted",
                       assets.stats[2 * t].reexecuted +
                           assets.stats[2 * t + 1].reexecuted);
      out.counters.add("fault_retries",
                       assets.stats[2 * t].fault_retries +
                           assets.stats[2 * t + 1].fault_retries);
      out.counters.add("crash_recoveries",
                       assets.stats[2 * t].crash_recoveries +
                           assets.stats[2 * t + 1].crash_recoveries);
    }
    out.prod_movement_us = nprod > 0 ? pm / nprod : 0.0;
    out.prod_idle_us = nprod > 0 ? pi / nprod : 0.0;
    out.cons_movement_us = ncons > 0 ? cm / ncons : 0.0;
    out.cons_idle_us = ncons > 0 ? ci / ncons : 0.0;

    // Zero-data-loss acceptance metric: every edge-frame must be fetched.
    std::uint64_t consumed = 0;
    for (std::size_t t = 0; t < ntasks; ++t) {
      consumed += assets.stats[2 * t + 1].frames_done;
    }
    out.counters.add("frames_lost", consumed < plan.total_edge_frames
                                        ? plan.total_edge_frames - consumed
                                        : 0);

    if (config.solution == Solution::kDyad) {
      for (const auto& conn : assets.cons_conn) {
        const auto& dc = static_cast<const DyadConnector&>(
                             conn->stats_target())
                             .consumer();
        out.counters.add("dyad_warm_hits", dc.warm_hits());
        out.counters.add("dyad_kvs_waits", dc.kvs_waits());
        out.counters.add("dyad_kvs_retries", dc.kvs_retries());
        out.counters.add("dyad_recovery_retries", dc.recovery_retries());
        out.counters.add("dyad_failovers", dc.failovers());
      }
      for (std::uint32_t n = 0; n < config.nodes; ++n) {
        out.counters.add("dyad_republishes", tb.node(n).dyad->republishes());
        const auto& hs = tb.node(n).dyad->health_state();
        out.counters.add("dyad_hedges", hs.hedges);
        out.counters.add("dyad_hedge_wins", hs.hedge_wins);
        out.counters.add("dyad_hedge_cancels", hs.hedge_cancels);
        out.counters.add("dyad_breaker_trips", hs.breaker.trips());
        out.counters.add("dyad_breaker_fast_fails", hs.breaker_fast_fails);
        out.counters.add("dyad_busy_retries", hs.busy_retries);
      }
    }
    if (config.solution == Solution::kStream) {
      for (std::uint32_t n = 0; n < config.nodes; ++n) {
        const auto& sn = *tb.node(n).stream;
        out.counters.add("stream_puts", sn.puts());
        out.counters.add("stream_staged_hits", sn.staged_hits());
        out.counters.add("stream_spills", sn.spills());
        out.counters.add("stream_spill_reads", sn.spill_reads());
        out.counters.add("stream_replays", sn.replays());
        out.counters.add("stream_dup_drops", sn.dup_drops());
        out.counters.add("stream_crash_drops", sn.crash_drops());
        out.counters.add("stream_credit_waits", sn.credit_waits());
        out.counters.add("stream_backpressure_stalls",
                         sn.backpressure_stalls());
        out.counters.add("stream_hedges", sn.hedges());
        out.counters.add("stream_hedge_wins", sn.hedge_wins());
      }
    }
    for (std::uint32_t n = 0; n < config.nodes; ++n) {
      out.counters.add("torn_writes", tb.node(n).local_fs->torn_files());
      out.counters.add("lost_dirty_pages", tb.node(n).cache->dirty_dropped());
      out.counters.add("cache_hits", tb.node(n).cache->hits());
      out.counters.add("cache_misses", tb.node(n).cache->misses());
    }
    collect_shared(tb, events_fired, out);
    out.makespan_s = (workload_end - TimePoint::origin()).to_seconds();
  }
  return out;
}

}  // namespace mdwf::workflow
