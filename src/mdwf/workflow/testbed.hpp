// Simulated cluster testbed (a Corona-like slice).
//
// Owns the simulation kernel, the fabric, per-compute-node resources (NVMe
// SSD, page cache, XFS-like local filesystem, DYAD runtime), the Flux-style
// KVS broker, and the Lustre servers.  Fabric endpoints are laid out as:
//
//   [0, compute_nodes)                     compute nodes
//   compute_nodes                          KVS broker node
//   compute_nodes + 1                      Lustre MDS
//   compute_nodes + 2 ... + 1 + ost_count  Lustre OSTs
//
// Reference parameter values follow DESIGN.md Sec. 5 (Corona: 8 GPUs and a
// 3.5 TB NVMe per node, IB QDR fabric, shared Lustre).
#pragma once

#include <memory>
#include <vector>

#include "mdwf/dyad/dyad.hpp"
#include "mdwf/fault/injector.hpp"
#include "mdwf/fault/plan.hpp"
#include "mdwf/fs/local_fs.hpp"
#include "mdwf/fs/lustre.hpp"
#include "mdwf/integrity/ledger.hpp"
#include "mdwf/kvs/kvs.hpp"
#include "mdwf/membership/membership.hpp"
#include "mdwf/net/network.hpp"
#include "mdwf/obs/trace.hpp"
#include "mdwf/sim/simulation.hpp"
#include "mdwf/storage/block_device.hpp"
#include "mdwf/storage/page_cache.hpp"
#include "mdwf/stream/stream.hpp"

namespace mdwf::workflow {

struct TestbedParams {
  std::uint32_t compute_nodes = 1;

  net::NetworkParams network{};
  storage::BlockDeviceParams node_ssd{
      .read_bandwidth_bps = 3.2e9,
      .write_bandwidth_bps = 3.0e9,
      .op_latency = Duration::microseconds(20),
      .queue_depth = 16,
      .capacity = Bytes::gib(3584),
  };
  // Corona nodes carry 256 GB of RAM; most of it is page cache for the
  // burst-buffer staging workload.
  storage::PageCacheParams page_cache{
      .capacity = Bytes::gib(48),
      .page_size = Bytes::kib(256),
      .memcpy_bps = 8.0e9,
  };
  fs::LocalFsParams local_fs{};
  fs::LustreParams lustre{};
  kvs::KvsParams kvs{};
  dyad::DyadParams dyad{};
  stream::StreamParams stream{};
  // Fault windows to inject (empty = healthy cluster).  The testbed attaches
  // an injector to every resource and arms it before the workload runs.
  // Crash windows in the plan also flip DYAD producers to durable puts
  // (fsync commit barrier before publish) — crash consistency costs I/O.
  fault::FaultPlan faults{};
  // End-to-end CRC32C integrity model (disabled = zero cost, no ledger).
  integrity::IntegrityParams integrity{};
  // Membership/controller plane (disabled = zero cost, no heartbeats).
  // When enabled the testbed owns a FenceRegistry, wires incarnation
  // fencing into the KVS, Lustre, DYAD and stream server paths, and runs
  // heartbeat + declare loops on the KVS broker node; ranks homed on a
  // declared node migrate instead of parking forever.
  membership::MembershipParams membership{};
  // Observability sink (non-owning; must outlive the testbed).  When set,
  // every resource registers its trace lanes: one "node{i}" process per
  // compute node (nvme / pagecache / dyad / nic lanes), plus "kvs",
  // "lustre", "faults" and "sim" processes.  Null = tracing off, zero cost.
  obs::TraceSink* trace = nullptr;
};

// Everything attached to one compute node.
struct NodeResources {
  std::unique_ptr<storage::BlockDevice> ssd;
  std::unique_ptr<storage::PageCache> cache;
  std::unique_ptr<fs::LocalFs> local_fs;
  std::unique_ptr<dyad::DyadNode> dyad;
  std::unique_ptr<stream::StreamNode> stream;
};

class Testbed {
 public:
  explicit Testbed(const TestbedParams& params);

  const TestbedParams& params() const { return params_; }

  sim::Simulation& simulation() { return sim_; }
  net::Network& network() { return *network_; }
  kvs::KvsServer& kvs() { return *kvs_; }
  fs::LustreServers& lustre() { return *lustre_; }
  dyad::DyadDomain& dyad_domain() { return dyad_domain_; }
  stream::StreamDomain& stream_domain() { return stream_domain_; }
  // Non-null iff the testbed was built with a non-empty fault plan.
  fault::FaultInjector* fault_injector() { return injector_.get(); }
  // Non-null iff params.integrity.enabled: the corruption oracle every
  // producer tags into and every consumer verifies against.
  integrity::Ledger* integrity_ledger() { return ledger_.get(); }
  // Non-null iff params.membership.enabled: the controller plane ranks
  // register with (and the fence registry backing its declares).
  membership::MembershipPlane* membership() { return membership_.get(); }
  FenceRegistry* fences() { return fences_.get(); }

  std::uint32_t compute_nodes() const { return params_.compute_nodes; }
  NodeResources& node(std::uint32_t i);

  net::NodeId kvs_node() const { return net::NodeId{params_.compute_nodes}; }
  net::NodeId mds_node() const {
    return net::NodeId{params_.compute_nodes + 1};
  }

 private:
  void attach_trace(obs::TraceSink& sink);

  TestbedParams params_;
  sim::Simulation sim_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<kvs::KvsServer> kvs_;
  std::unique_ptr<fs::LustreServers> lustre_;
  dyad::DyadDomain dyad_domain_;
  stream::StreamDomain stream_domain_;
  std::vector<NodeResources> nodes_;
  std::unique_ptr<integrity::Ledger> ledger_;
  std::unique_ptr<fault::FaultInjector> injector_;
  // Declared after injector_: the plane borrows its CrashMonitor.
  std::unique_ptr<FenceRegistry> fences_;
  std::unique_ptr<membership::MembershipPlane> membership_;
};

}  // namespace mdwf::workflow
