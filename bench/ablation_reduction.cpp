// Ablation: in-situ data reduction (DESIGN.md Sec. 3; paper Sec. II-B).
//
// Producers compress frames (quantized-delta codec, ~1.9x at 1e-3
// precision) before moving them; consumers decompress.  Whether that pays
// depends on which side is the bottleneck:
//
//   Lustre + STMV  - movement-bound (network + OST): compression should
//                    shrink the dominant cost;
//   DYAD + JAC     - already CPU/RPC-bound: codec time is pure overhead.
//
// Measured with 2 nodes, 8 pairs, Table II strides.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace mdwf;
using namespace mdwf::bench;
using workflow::Solution;

constexpr std::uint64_t kFrames = 64;

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  struct Combo {
    Solution solution;
    md::MolecularModel model;
  };
  const Combo combos[] = {
      {Solution::kDyad, md::kJac},
      {Solution::kDyad, md::kStmv},
      {Solution::kLustre, md::kJac},
      {Solution::kLustre, md::kStmv},
  };
  for (const auto& combo : combos) {
    for (const bool compress : {false, true}) {
      Case c;
      c.label = std::string(to_string(combo.solution)) + "/" +
                std::string(combo.model.name) +
                (compress ? "/compressed" : "/raw");
      c.config = make_config(combo.solution, 8, 2, combo.model,
                             combo.model.stride, kFrames);
      c.config.workload.compress = compress;
      cases.push_back(std::move(c));
    }
  }
  return cases;
}

void report(const std::vector<Case>& cases) {
  print_panel("Ablation: data reduction, production per frame (8 pairs)",
              cases, /*production=*/true, /*in_ms=*/true);
  print_panel("Ablation: data reduction, consumption per frame (8 pairs)",
              cases, /*production=*/false, /*in_ms=*/true);

  std::printf("\nHeadlines (movement time, raw vs compressed):\n");
  for (const char* combo :
       {"DYAD/JAC", "DYAD/STMV", "Lustre/JAC", "Lustre/STMV"}) {
    const std::string raw = std::string(combo) + "/raw";
    const std::string comp = std::string(combo) + "/compressed";
    print_headline(std::string("movement saved by compression, ") + combo,
                   safe_ratio(cons_movement_us(raw) + prod_movement_us(raw),
                              cons_movement_us(comp) + prod_movement_us(comp)),
                   "wins where movement-bound, loses elsewhere (codec CPU "
                   "not shown here)");
  }
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, make_cases(), report);
}
