// Figure 10: Thicket call-tree analysis of Lustre, JAC vs STMV.
//
// Paper setup (Sec. IV-E, Fig. 10): the Fig. 8 configuration analyzed with
// Thicket.  The Lustre consumer call tree is
//   consume / {explicit_sync, FilesystemReader::read_single_buf}
// Findings reproduced:
//   - data movement (read_single_buf) grows ~12.3x for 45.3x more data
//     (Lustre's striping/parallelism absorbs much of the growth);
//   - explicit_sync stays roughly constant (~one frame period) and
//     dominates, capping Lustre's scalability for MD workflows.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace mdwf;
using namespace mdwf::bench;
using workflow::Solution;

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (const auto& model : {md::kJac, md::kStmv}) {
    Case c;
    c.label = "Lustre/" + std::string(model.name);
    c.config = make_config(Solution::kLustre, 16, 2, model, model.stride);
    cases.push_back(std::move(c));
  }
  return cases;
}

double node_us(const perf::StatTree& t, const std::string& path) {
  const auto* n = t.find(path);
  return n == nullptr ? 0.0 : n->inclusive_us.mean();
}

void report(const std::vector<Case>& cases) {
  perf::StatTree jac, stmv;
  for (const auto& c : cases) {
    const auto& r = Registry::instance().at(c.label);
    auto agg = r.thicket.filter("role", "consumer").aggregate();
    std::printf("\nFig 10(%s): Lustre consumer call tree, %s\n",
                c.label == "Lustre/JAC" ? "a" : "b", c.label.c_str());
    std::printf("%s", agg.render().c_str());
    if (c.label == "Lustre/JAC") {
      jac = std::move(agg);
    } else {
      stmv = std::move(agg);
    }
  }

  const double jac_read =
      node_us(jac, "consume/FilesystemReader::read_single_buf");
  const double stmv_read =
      node_us(stmv, "consume/FilesystemReader::read_single_buf");
  const double jac_sync = node_us(jac, "consume/explicit_sync");
  const double stmv_sync = node_us(stmv, "consume/explicit_sync");

  std::printf("\nHeadlines:\n");
  print_headline("STMV/JAC data volume", 45.3, "45.3x");
  print_headline("STMV/JAC Lustre read_single_buf cost",
                 safe_ratio(stmv_read, jac_read), "12.3x");
  print_headline("STMV/JAC explicit_sync cost",
                 safe_ratio(stmv_sync, jac_sync),
                 "~1x (constant; limits scalability)");
  print_headline("explicit_sync share of STMV consumption",
                 safe_ratio(stmv_sync, stmv_sync + stmv_read),
                 "dominant");
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, make_cases(), report);
}
