// Figure 6: two-node small-scale distributed ensemble, DYAD vs Lustre, JAC.
//
// Paper setup (Sec. IV-D): producers on node 1, consumers on node 2;
// 1/2/4/8 pairs; JAC, stride 880, 128 frames, 10 runs.  XFS cannot span
// nodes, so Lustre is the traditional-I/O baseline.  Findings reproduced:
//   (a) DYAD producer data movement ~7.5x faster than Lustre (node-local
//       storage vs off-node parallel filesystem);
//   (b) DYAD consumer data movement ~6.9x faster; overall consumption
//       ~197.4x faster; and DYAD's two-node times mirror its single-node
//       times (network communication between two nodes is cheap).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace mdwf;
using namespace mdwf::bench;
using workflow::Solution;

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (const auto solution : {Solution::kDyad, Solution::kLustre}) {
    for (const std::uint32_t pairs : {1u, 2u, 4u, 8u}) {
      Case c;
      c.label = std::string(to_string(solution)) + "/pairs=" +
                std::to_string(pairs);
      c.config = make_config(solution, pairs, /*nodes=*/2, md::kJac,
                             md::kJac.stride);
      cases.push_back(std::move(c));
    }
  }
  // DYAD single-node reference (Finding 2: distribution has little effect).
  Case ref;
  ref.label = "DYAD-1node/pairs=4";
  ref.config = make_config(Solution::kDyad, 4, 1, md::kJac, md::kJac.stride);
  cases.push_back(std::move(ref));
  return cases;
}

void report(const std::vector<Case>& cases) {
  print_panel("Fig 6(a): data production time per frame (two nodes, JAC)",
              cases, /*production=*/true, /*in_ms=*/false);
  print_panel("Fig 6(b): data consumption time per frame (two nodes, JAC)",
              cases, /*production=*/false, /*in_ms=*/true);

  std::printf("\nHeadlines (8-pair point unless noted):\n");
  print_headline("DYAD producer movement speedup vs Lustre",
                 safe_ratio(prod_movement_us("Lustre/pairs=8"),
                            prod_movement_us("DYAD/pairs=8")),
                 "7.5x faster");
  print_headline("DYAD consumer movement speedup vs Lustre",
                 safe_ratio(cons_movement_us("Lustre/pairs=8"),
                            cons_movement_us("DYAD/pairs=8")),
                 "6.9x faster");
  print_headline("DYAD overall consumption speedup vs Lustre",
                 safe_ratio(cons_total_us("Lustre/pairs=8"),
                            cons_total_us("DYAD/pairs=8")),
                 "197.4x faster");
  print_headline("DYAD two-node vs single-node production (4 pairs)",
                 safe_ratio(prod_total_us("DYAD/pairs=4"),
                            prod_total_us("DYAD-1node/pairs=4")),
                 "~1x (little effect)");
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, make_cases(), report);
}
