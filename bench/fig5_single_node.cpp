// Figure 5: single-node ensemble-size scaling, DYAD vs XFS, JAC model.
//
// Paper setup (Sec. IV-D): one node, 1/2/4 producer-consumer pairs, JAC with
// stride 880, 128 frames per pair, 10 runs.  Lustre is excluded on a single
// node (as in the paper).  Findings reproduced:
//   (a) production: DYAD ~1.4x slower than XFS (global namespace
//       management), linear growth with ensemble size, no significant idle;
//   (b) consumption: DYAD ~192.9x faster overall than XFS thanks to
//       multi-protocol synchronization (KVS first touch, flock afterwards).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace mdwf;
using namespace mdwf::bench;
using workflow::Solution;

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (const auto solution : {Solution::kDyad, Solution::kXfs}) {
    for (const std::uint32_t pairs : {1u, 2u, 4u}) {
      Case c;
      c.label = std::string(to_string(solution)) + "/pairs=" +
                std::to_string(pairs);
      c.config = make_config(solution, pairs, /*nodes=*/1, md::kJac,
                             md::kJac.stride);
      cases.push_back(std::move(c));
    }
  }
  return cases;
}

void report(const std::vector<Case>& cases) {
  print_panel("Fig 5(a): data production time per frame (single node, JAC)",
              cases, /*production=*/true, /*in_ms=*/false);
  // The paper's bars aggregate over the ensemble; per-pair cost is flat, so
  // the aggregate grows linearly with ensemble size ("adding more
  // concurrent ensembles linearly increases the time").
  std::printf("\nFig 5(a) aggregate production time across the ensemble:\n");
  for (const auto& c : cases) {
    const auto& r = Registry::instance().at(c.label);
    std::printf("  %-14s %10.1f us (pairs x per-frame)\n", c.label.c_str(),
                r.mean_production_us() *
                    static_cast<double>(c.config.pairs));
  }
  print_panel("Fig 5(b): data consumption time per frame (single node, JAC)",
              cases, /*production=*/false, /*in_ms=*/true);

  std::printf("\nHeadlines (4-pair point):\n");
  print_headline("DYAD production slowdown vs XFS",
                 safe_ratio(prod_total_us("DYAD/pairs=4"),
                            prod_total_us("XFS/pairs=4")),
                 "1.4x slower");
  print_headline("DYAD consumption speedup vs XFS (overall)",
                 safe_ratio(cons_total_us("XFS/pairs=4"),
                            cons_total_us("DYAD/pairs=4")),
                 "192.9x faster");
  print_headline("DYAD consumption movement vs XFS movement",
                 safe_ratio(cons_movement_us("DYAD/pairs=4"),
                            cons_movement_us("XFS/pairs=4")),
                 "1.4x slower");
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, make_cases(), report);
}
