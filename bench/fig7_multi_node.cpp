// Figure 7: multi-node ensemble-size scaling, DYAD vs Lustre, JAC.
//
// Paper setup (Sec. IV-D): 2..64 nodes split evenly between producers and
// consumers, 8 ranks per node (8/16/32/64/128/256 pairs), JAC, stride 880.
// Lustre additionally sees background interference from other cluster
// tenants at scale (the paper attributes its 128/256-pair variability to
// this).  Findings reproduced:
//   (a) production flat with ensemble size; DYAD ~5.3x faster movement;
//       Lustre more variable at 128/256 pairs;
//   (b) DYAD consumer movement ~5.8x faster; overall ~192.0x faster.
//
// Runs on the parallel replica runner (mdwf::sweep): threads=N fans each
// case's 10 seeded repetitions across N workers with byte-identical tables.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace mdwf;
using namespace mdwf::bench;
using workflow::Solution;

// Keep wall time in check at 256 pairs while retaining the per-frame
// behaviour; matching the paper.
constexpr std::uint64_t kFrames = 128;
constexpr std::uint32_t kPairsSweep[] = {8, 16, 32, 64, 128, 256};

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (const auto solution : {Solution::kDyad, Solution::kLustre}) {
    for (const std::uint32_t pairs : kPairsSweep) {
      Case c;
      c.label = std::string(to_string(solution)) + "/pairs=" +
                std::to_string(pairs);
      const std::uint32_t nodes = pairs / 4;  // 8 ranks per node
      c.config = make_config(solution, pairs, nodes, md::kJac,
                             md::kJac.stride, kFrames);
      if (solution == Solution::kLustre) {
        c.config.lustre_interference = true;
      }
      cases.push_back(std::move(c));
    }
  }
  return cases;
}

void report(const std::vector<Case>& cases) {
  print_panel("Fig 7(a): data production time per frame (multi-node, JAC)",
              cases, /*production=*/true, /*in_ms=*/false);
  print_panel("Fig 7(b): data consumption time per frame (multi-node, JAC)",
              cases, /*production=*/false, /*in_ms=*/true);

  std::printf("\nHeadlines (256-pair point):\n");
  print_headline("DYAD producer movement speedup vs Lustre",
                 safe_ratio(prod_movement_us("Lustre/pairs=256"),
                            prod_movement_us("DYAD/pairs=256")),
                 "5.3x faster");
  print_headline("DYAD consumer movement speedup vs Lustre",
                 safe_ratio(cons_movement_us("Lustre/pairs=256"),
                            cons_movement_us("DYAD/pairs=256")),
                 "5.8x faster");
  print_headline("DYAD overall consumption speedup vs Lustre",
                 safe_ratio(cons_total_us("Lustre/pairs=256"),
                            cons_total_us("DYAD/pairs=256")),
                 "192.0x faster");

  const auto& dyad = Registry::instance().at("DYAD/pairs=256");
  const auto& lustre = Registry::instance().at("Lustre/pairs=256");
  std::printf(
      "  Run-to-run production variability at 256 pairs: DYAD %.2f us, "
      "Lustre %.2f us (paper: Lustre more variable)\n",
      dyad.prod_movement_us.stddev(), lustre.prod_movement_us.stddev());
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, make_cases(), report);
}
