// Four-solution frontier sweep: where does the streaming data plane beat
// DYAD's first-touch sync, and where does it lose?
//
// The grid crosses frame size (model), consumer count (pairs), consumer
// lag (the `analytics=` multiplier: lag > 1 is in-situ analysis slower
// than production), and fault scenario for all four solutions (DYAD, XFS,
// Lustre, stream) through the parallel replica runner.  The headline
// metric is the consumer frame-fetch latency distribution: stream wins
// where frames fit the staging buffer (the consumer dodges DYAD's
// per-frame KVS visibility wait), and loses where lagging consumers let
// the aggregate staging demand
//
//   pairs x credits x frame_bytes  >  buffer_capacity
//
// push puts onto the spill path (a Lustre round trip plus up to one
// arrival-timeout of subscriber blindness per frame).  That inequality is
// the crossover parameter the report names.
//
//   solution_frontier [models=JAC,STMV] [pairs=1,4,8] [lags=1,8]
//                     [faults=none,lossy-link,overload] [frames=8] [reps=2]
//                     [threads=1] [out=<csv path>]
//
// stdout carries one "frontier:" line per (model, pairs, faults) regime
// comparing stream vs DYAD P99, then a machine-readable summary line
// (tools/bench.sh frontier turns a re-run pair into BENCH_pr6.json).  The
// CSV excludes wall-clock, so re-runs at any thread count are byte-identical.
// Exit 0 when every point ran clean and both frontier sides are non-empty.
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "mdwf/common/keyval.hpp"
#include "mdwf/md/models.hpp"
#include "mdwf/sweep/sweep.hpp"
#include "mdwf/workflow/config.hpp"

using namespace mdwf;

namespace {

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) items.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

struct Regime {
  std::string model;
  std::string pairs;
  std::string lag;
  std::string faults;
  auto operator<=>(const Regime&) const = default;
};

}  // namespace

int main(int argc, char** argv) {
  KeyValueConfig cfg;
  cfg.parse_args(argc, argv);
  const std::string models_csv = cfg.get_string("models", "JAC,STMV");
  const std::string pairs_csv = cfg.get_string("pairs", "1,4,8");
  const std::string lags_csv = cfg.get_string("lags", "1,8");
  const std::string faults_csv =
      cfg.get_string("faults", "none,lossy-link,overload");
  const std::uint64_t frames = cfg.get_uint("frames", 8);
  const std::uint64_t reps = cfg.get_uint("reps", 2);
  const auto threads = static_cast<std::uint32_t>(cfg.get_uint("threads", 1));
  const std::string out = cfg.get_string("out", "");
  if (const auto unknown = cfg.unknown_keys(); !unknown.empty()) {
    std::string msg = "solution_frontier: unknown key(s):";
    for (const auto& k : unknown) msg += " " + k;
    std::fprintf(stderr, "%s\n", msg.c_str());
    return 1;
  }

  static constexpr const char* kSolutions[] = {"dyad", "xfs", "lustre",
                                               "stream"};
  std::vector<sweep::SweepPoint> grid;
  for (const std::string& model : split_list(models_csv)) {
    for (const std::string& pairs : split_list(pairs_csv)) {
      for (const std::string& lag : split_list(lags_csv)) {
        for (const std::string& faults : split_list(faults_csv)) {
          for (const char* solution : kSolutions) {
            // One KeyValueConfig per point: the shared binding applies
            // every cross-key rule (XFS single-node, retry-on-faults,
            // integrity auto-enable) exactly as mdwf_run would.
            KeyValueConfig point;
            point.set("solution", solution);
            point.set("model", model);
            point.set("pairs", pairs);
            point.set("analytics", lag);
            point.set("frames", std::to_string(frames));
            point.set("reps", std::to_string(reps));
            point.set("faults", faults);
            workflow::EnsembleConfig defaults;
            defaults.nodes = 2;  // split placement (XFS overrides to 1)
            workflow::EnsembleConfig c;
            try {
              c = workflow::parse_ensemble_config(point, defaults);
            } catch (const ConfigError& e) {
              std::fprintf(stderr, "solution_frontier: %s\n", e.what());
              return 1;
            }
            grid.push_back({std::string(solution) + "/" + model + "/pairs" +
                                pairs + "/lag" + lag + "/" + faults,
                            c});
          }
        }
      }
    }
  }

  const sweep::SweepResult result = sweep::run_sweep(std::move(grid), threads);

  std::string csv =
      "solution,model,pairs,nodes,lag,faults,frame_mib,fetch_p50_us,"
      "fetch_p99_us,"
      "cons_move_us,cons_idle_us,makespan_s,stream_staged_hits,stream_spills,"
      "stream_spill_reads,stream_credit_waits,stream_backpressure_stalls,"
      "integrity_unrecovered,frames_consumed\n";
  // (model, pairs, faults) -> solution -> fetch P99 (us), for the frontier.
  std::map<Regime, std::map<std::string, double>> p99;
  std::size_t idx = 0;
  for (const std::string& model : split_list(models_csv)) {
    for (const std::string& pairs : split_list(pairs_csv)) {
      for (const std::string& lag : split_list(lags_csv)) {
        for (const std::string& faults : split_list(faults_csv)) {
          for (const char* solution : kSolutions) {
            const sweep::PointResult& pt = result.points[idx++];
            if (pt.failed()) {
              std::fprintf(stderr,
                           "solution_frontier: point '%s' failed: %s\n",
                           pt.label.c_str(), pt.error_text.c_str());
              continue;
            }
            const workflow::EnsembleResult& r = pt.result;
            const double fetch_p99 = r.cons_fetch_us.quantile(0.99);
            p99[{model, pairs, lag, faults}][solution] = fetch_p99;
            char line[512];
            std::snprintf(
                line, sizeof(line),
                "%s,%s,%s,%u,%s,%s,%.3f,%.1f,%.1f,%.1f,%.1f,%.4f,%llu,%llu,"
                "%llu,%llu,%llu,%llu,%llu\n",
                solution, model.c_str(), pairs.c_str(), pt.config.nodes,
                lag.c_str(), faults.c_str(),
                pt.config.workload.model.frame_bytes().to_mib(),
                r.cons_fetch_us.quantile(0.50), fetch_p99,
                r.cons_movement_us.mean(), r.cons_idle_us.mean(),
                r.makespan_s.mean(),
                static_cast<unsigned long long>(r.counters.get("stream_staged_hits")),
                static_cast<unsigned long long>(r.counters.get("stream_spills")),
                static_cast<unsigned long long>(r.counters.get("stream_spill_reads")),
                static_cast<unsigned long long>(r.counters.get("stream_credit_waits")),
                static_cast<unsigned long long>(
                    r.counters.get("stream_backpressure_stalls")),
                static_cast<unsigned long long>(r.counters.get("integrity_unrecovered")),
                static_cast<unsigned long long>(r.counters.get("frames_consumed")));
            csv += line;
          }
        }
      }
    }
  }

  if (!out.empty()) {
    std::ofstream f(out);
    if (!f) {
      std::fprintf(stderr, "solution_frontier: cannot write '%s'\n",
                   out.c_str());
      return 1;
    }
    f << csv;
  } else {
    std::fputs(csv.c_str(), stdout);
  }

  // The frontier: stream vs DYAD consumer fetch P99 per regime, annotated
  // with the staging-demand side of the crossover inequality.
  const stream::StreamParams stream_defaults{};
  const double buffer_mib = stream_defaults.buffer_capacity.to_mib();
  std::size_t wins = 0;
  std::size_t losses = 0;
  for (const auto& [regime, by_solution] : p99) {
    const auto s = by_solution.find("stream");
    const auto d = by_solution.find("dyad");
    if (s == by_solution.end() || d == by_solution.end()) continue;
    const auto model = md::find_model(regime.model);
    const double demand_mib = model.has_value()
                                  ? std::stod(regime.pairs) *
                                        stream_defaults.credits *
                                        model->frame_bytes().to_mib()
                                  : 0.0;
    const bool win = s->second < d->second;
    (win ? wins : losses) += 1;
    std::printf(
        "frontier: model=%s pairs=%s lag=%s faults=%s stream_p99_us=%.1f "
        "dyad_p99_us=%.1f staging_demand_mib=%.1f buffer_mib=%.1f winner=%s\n",
        regime.model.c_str(), regime.pairs.c_str(), regime.lag.c_str(),
        regime.faults.c_str(), s->second, d->second, demand_mib, buffer_mib,
        win ? "stream" : "dyad");
  }

  std::printf(
      "solution_frontier: points=%zu errors=%zu stream_wins=%zu "
      "stream_losses=%zu sim_events=%llu\n",
      result.points.size(), result.errors, wins, losses,
      static_cast<unsigned long long>(result.total_sim_events));
  if (result.errors != 0) return 1;
  // A frontier needs both sides; an all-win or all-lose grid means the
  // sweep no longer brackets the crossover.
  return (wins >= 1 && losses >= 1) ? 0 : 1;
}
