// Figure 11: frame-generation frequency scaling with JAC, DYAD vs Lustre.
//
// Paper setup (Sec. IV-F): 2 nodes, 16 pairs, JAC, strides 1/5/10/50 (an
// output frame every 0.93 ms .. 46.6 ms).  Findings reproduced:
//   (a) data movement flat across strides; DYAD ~4.8x faster production;
//   (b) idle grows with stride for both solutions, DYAD's stays far
//       smaller (adaptive synchronization), so the overall gap widens with
//       stride.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace mdwf;
using namespace mdwf::bench;
using workflow::Solution;

constexpr std::uint64_t kStrides[] = {1, 5, 10, 50};

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (const auto solution : {Solution::kDyad, Solution::kLustre}) {
    for (const std::uint64_t stride : kStrides) {
      Case c;
      c.label = std::string(to_string(solution)) + "/stride=" +
                std::to_string(stride);
      c.config = make_config(solution, 16, 2, md::kJac, stride);
      cases.push_back(std::move(c));
    }
  }
  return cases;
}

void report(const std::vector<Case>& cases) {
  print_panel("Fig 11(a): data production time per frame (JAC, 16 pairs)",
              cases, /*production=*/true, /*in_ms=*/false);
  print_panel("Fig 11(b): data consumption time per frame (JAC, 16 pairs)",
              cases, /*production=*/false, /*in_ms=*/true);

  std::printf("\nHeadlines:\n");
  print_headline("DYAD production speedup vs Lustre (stride 10)",
                 safe_ratio(prod_total_us("Lustre/stride=10"),
                            prod_total_us("DYAD/stride=10")),
                 "4.8x faster");
  print_headline("DYAD consumption movement speedup (stride 10)",
                 safe_ratio(cons_movement_us("DYAD/stride=10") > 0
                                ? cons_movement_us("Lustre/stride=10")
                                : 0,
                            cons_movement_us("DYAD/stride=10")),
                 "4.8x faster");
  const double gap1 = safe_ratio(cons_total_us("Lustre/stride=1"),
                                 cons_total_us("DYAD/stride=1"));
  const double gap50 = safe_ratio(cons_total_us("Lustre/stride=50"),
                                  cons_total_us("DYAD/stride=50"));
  print_headline("overall consumption gap, stride 1", gap1,
                 "gap widens with stride");
  print_headline("overall consumption gap, stride 50", gap50,
                 "gap widens with stride");
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, make_cases(), report);
}
