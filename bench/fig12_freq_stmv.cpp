// Figure 12: frame-generation frequency scaling with STMV, DYAD vs Lustre.
//
// Paper setup (Sec. IV-F): 2 nodes, 16 pairs, STMV, strides 1/5/10/50 (a
// 28.5 MiB frame every 29 ms .. 1.46 s).  Findings reproduced:
//   (a) DYAD production ~2.0x faster than Lustre (bulk bandwidth matters
//       more than fixed overheads for the large frames);
//   (b) DYAD's data movement improves at higher strides (less network
//       contention between back-to-back transfers); DYAD overall 13x..192x
//       faster, the gap widening with stride.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace mdwf;
using namespace mdwf::bench;
using workflow::Solution;

constexpr std::uint64_t kStrides[] = {1, 5, 10, 50};
// 28.5 MiB frames every few ms make stride-1 runs event-heavy; 64 frames
// keep the sweep tractable without changing per-frame behaviour.
constexpr std::uint64_t kFrames = 64;

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (const auto solution : {Solution::kDyad, Solution::kLustre}) {
    for (const std::uint64_t stride : kStrides) {
      Case c;
      c.label = std::string(to_string(solution)) + "/stride=" +
                std::to_string(stride);
      c.config = make_config(solution, 16, 2, md::kStmv, stride, kFrames);
      cases.push_back(std::move(c));
    }
  }
  return cases;
}

void report(const std::vector<Case>& cases) {
  print_panel("Fig 12(a): data production time per frame (STMV, 16 pairs)",
              cases, /*production=*/true, /*in_ms=*/true);
  print_panel("Fig 12(b): data consumption time per frame (STMV, 16 pairs)",
              cases, /*production=*/false, /*in_ms=*/true);

  std::printf("\nHeadlines:\n");
  print_headline("DYAD production speedup vs Lustre (stride 10)",
                 safe_ratio(prod_total_us("Lustre/stride=10"),
                            prod_total_us("DYAD/stride=10")),
                 "2.0x faster");
  print_headline(
      "DYAD movement, stride 1 vs stride 50 (network contention)",
      safe_ratio(cons_movement_us("DYAD/stride=1"),
                 cons_movement_us("DYAD/stride=50")),
      "up to 1.4x better at high stride");
  const double gap1 = safe_ratio(cons_total_us("Lustre/stride=1"),
                                 cons_total_us("DYAD/stride=1"));
  const double gap50 = safe_ratio(cons_total_us("Lustre/stride=50"),
                                  cons_total_us("DYAD/stride=50"));
  print_headline("overall consumption gap, stride 1", gap1, "13.0x");
  print_headline("overall consumption gap, stride 50", gap50, "192.2x");
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, make_cases(), report);
}
