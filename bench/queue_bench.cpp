// Event-queue shootout: the DES kernel's pooled 4-ary heap vs the calendar
// queue, at paper-sweep pending-set sizes.
//
// Uses the classic hold model: prime the queue with `size` pending events,
// then churn — pop the minimum, reschedule at the popped time plus a random
// increment — so the pending population stays fixed at `size` while the
// clock advances, exactly the steady state of a saturated simulation.  A
// second phase mixes in O(1) lazy cancellations (the retry/hedge pattern),
// and a final phase drains the queue dry.  Reported figure of merit is
// million ops/sec per phase.
//
//   queue_bench [sizes=100000,1000000,10000000] [churn=3000000] [seed=1]
//               [out=<csv path>]
//
// Pushes use the coroutine-handle overload (no closure, no allocation), the
// kernel's overwhelmingly common path.  Exit code 0 when both queues drain
// to empty with matching pop counts, 1 otherwise.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "mdwf/common/keyval.hpp"
#include "mdwf/common/rng.hpp"
#include "mdwf/common/time.hpp"
#include "mdwf/sim/calendar_queue.hpp"
#include "mdwf/sim/event_heap.hpp"

using namespace mdwf;

namespace {

struct PhaseResult {
  double hold_mops = 0;    // pop+push pairs/sec, millions
  double cancel_mops = 0;  // pop+push+cancel mix ops/sec, millions
  double drain_mops = 0;   // pops/sec, millions
  std::uint64_t pops = 0;
};

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The mean inter-event gap is size-independent (1024 ns) so the pending
// window in virtual time scales with the population, stressing the calendar
// resize/width estimation the way a growing sweep does.
template <typename Queue>
PhaseResult run(std::uint64_t size, std::uint64_t churn, std::uint64_t seed) {
  Queue q;
  Rng rng(seed);
  std::uint64_t next_seq = 0;
  std::int64_t now = 0;
  PhaseResult r;

  auto at = [](std::int64_t ns) { return TimePoint::origin() + Duration(ns); };

  for (std::uint64_t i = 0; i < size; ++i) {
    q.push(at(static_cast<std::int64_t>(rng.next_below(size * 2048))),
           next_seq++, std::coroutine_handle<>{});
  }

  // Phase 1: pure hold.
  double t0 = now_s();
  for (std::uint64_t i = 0; i < churn; ++i) {
    sim::EventSlot* e = q.pop();
    now = (e->at - TimePoint::origin()).ns();
    q.release(e);
    ++r.pops;
    q.push(at(now + 1 + static_cast<std::int64_t>(rng.next_below(2048))),
           next_seq++, std::coroutine_handle<>{});
  }
  r.hold_mops = static_cast<double>(churn) / (now_s() - t0) / 1e6;

  // Phase 2: hold with a 25% cancel mix — every 4th round also cancels a
  // freshly scheduled event (the timeout-armed-then-satisfied pattern).
  t0 = now_s();
  for (std::uint64_t i = 0; i < churn; ++i) {
    sim::EventSlot* e = q.pop();
    now = (e->at - TimePoint::origin()).ns();
    q.release(e);
    ++r.pops;
    sim::EventSlot* fresh =
        q.push(at(now + 1 + static_cast<std::int64_t>(rng.next_below(2048))),
               next_seq, std::coroutine_handle<>{});
    if (i % 4 == 3) {
      q.cancel(fresh, next_seq);
      ++next_seq;
      q.push(at(now + 1 + static_cast<std::int64_t>(rng.next_below(2048))),
             next_seq++, std::coroutine_handle<>{});
    } else {
      ++next_seq;
    }
  }
  r.cancel_mops = static_cast<double>(churn) / (now_s() - t0) / 1e6;

  // Phase 3: drain dry.
  t0 = now_s();
  std::uint64_t drained = 0;
  while (sim::EventSlot* e = q.pop()) {
    q.release(e);
    ++drained;
  }
  r.drain_mops = static_cast<double>(drained) / (now_s() - t0) / 1e6;
  r.pops += drained;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  KeyValueConfig cfg;
  cfg.parse_args(argc, argv);
  const std::uint64_t churn = cfg.get_uint("churn", 3'000'000);
  const std::uint64_t seed = cfg.get_uint("seed", 1);
  std::vector<std::uint64_t> sizes;
  {
    const std::string raw = cfg.get_string("sizes", "100000,1000000,10000000");
    std::size_t pos = 0;
    while (pos < raw.size()) {
      const std::size_t comma = raw.find(',', pos);
      sizes.push_back(std::stoull(raw.substr(pos, comma - pos)));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  std::string csv = "queue,pending,hold_mops,cancel_mops,drain_mops\n";
  bool ok = true;
  std::printf("%-10s %12s %12s %12s %12s\n", "queue", "pending", "hold M/s",
              "cancel M/s", "drain M/s");
  for (const std::uint64_t size : sizes) {
    const PhaseResult heap = run<sim::EventHeap>(size, churn, seed);
    const PhaseResult cal = run<sim::CalendarQueue>(size, churn, seed);
    if (heap.pops != cal.pops) {
      std::fprintf(stderr, "pop-count mismatch at pending=%llu\n",
                   static_cast<unsigned long long>(size));
      ok = false;
    }
    for (const auto& [name, r] :
         {std::pair<const char*, const PhaseResult&>{"heap4", heap},
          {"calendar", cal}}) {
      std::printf("%-10s %12llu %12.2f %12.2f %12.2f\n", name,
                  static_cast<unsigned long long>(size), r.hold_mops,
                  r.cancel_mops, r.drain_mops);
      char line[160];
      std::snprintf(line, sizeof(line), "%s,%llu,%.2f,%.2f,%.2f\n", name,
                    static_cast<unsigned long long>(size), r.hold_mops,
                    r.cancel_mops, r.drain_mops);
      csv += line;
    }
  }
  const std::string out = cfg.get_string("out", "");
  if (!out.empty()) std::ofstream(out, std::ios::trunc) << csv;
  return ok ? 0 : 1;
}
