// Table I: targeted molecular models — atoms, frame size, steps/second —
// plus measured serialization throughput of the real frame codec.
//
// The table rows are reproduced from the model registry; the benchmark part
// measures actual (wall-clock) serialize/deserialize rates for each model's
// frame, which the simulated serialize_bps parameter is calibrated against.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "mdwf/common/format.hpp"
#include "mdwf/common/table.hpp"
#include "mdwf/md/frame.hpp"
#include "mdwf/md/models.hpp"

namespace {

using namespace mdwf;

void BM_SerializeFrame(benchmark::State& state) {
  const auto& model = md::kAllModels[static_cast<std::size_t>(state.range(0))];
  const md::Frame frame =
      md::synthesize_frame(std::string(model.name), model.atoms, 0, 42);
  for (auto _ : state) {
    auto buf = frame.serialize();
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(frame.serialized_size().count()));
  state.SetLabel(std::string(model.name));
}
BENCHMARK(BM_SerializeFrame)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_DeserializeFrame(benchmark::State& state) {
  const auto& model = md::kAllModels[static_cast<std::size_t>(state.range(0))];
  const auto buf =
      md::synthesize_frame(std::string(model.name), model.atoms, 0, 42)
          .serialize();
  for (auto _ : state) {
    auto frame = md::Frame::deserialize(buf);
    benchmark::DoNotOptimize(frame.atoms.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
  state.SetLabel(std::string(model.name));
}
BENCHMARK(BM_DeserializeFrame)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void print_table1() {
  TextTable t({"Name", "Num Atoms", "Frame size", "Steps/second",
               "serialized size (measured)"});
  for (const auto& m : md::kAllModels) {
    const md::Frame f =
        md::synthesize_frame(std::string(m.name), m.atoms, 0, 1);
    t.add_row({std::string(m.name), std::to_string(m.atoms),
               format_bytes(m.frame_bytes()), format_double(m.steps_per_second),
               format_bytes(f.serialized_size())});
  }
  std::printf("\nTable I: targeted molecular models\n%s", t.render().c_str());
  std::printf(
      "(paper: JAC 644.21 KiB, ApoA1 2.46 MiB, F1 ATPase 8.75 MiB, STMV "
      "28.48 MiB at 28 B/atom)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table1();
  return 0;
}
