// Paper-scale sweep: the DYAD-vs-Lustre grid at production scale, driven by
// the parallel replica runner (mdwf::sweep).
//
// The grid doubles pairs from 1 up to `pairs=` (64 by default) with nodes
// sized for 8 ranks per node (split placement: producers on one half,
// consumers on the other), at STMV — the paper's largest model — for both
// DYAD and Lustre.  `corona=1` (default) adds the headline points at the
// paper's full Corona allotment: 120 compute nodes, maximum pairs.  Every
// (point, repetition) fans across `threads=` workers; the merged CSV is
// byte-identical for every thread count, so
//
//   scale_sweep threads=1 out=a.csv && scale_sweep threads=4 out=b.csv
//   cmp a.csv b.csv
//
// is the determinism check and the wall-clock ratio is the speedup
// (tools/bench.sh scale automates both into BENCH_pr5.json).
//
//   scale_sweep [threads=1] [pairs=64] [frames=16] [reps=3] [model=STMV]
//               [corona=1] [out=<csv path>]
//
// Exit code 0 when every grid point ran clean, 1 otherwise.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "mdwf/common/keyval.hpp"
#include "mdwf/md/models.hpp"
#include "mdwf/sweep/sweep.hpp"

using namespace mdwf;

int main(int argc, char** argv) {
  KeyValueConfig cfg;
  cfg.parse_args(argc, argv);
  const auto threads = static_cast<std::uint32_t>(cfg.get_uint("threads", 1));
  const std::uint64_t frames = cfg.get_uint("frames", 16);
  const auto reps = static_cast<std::uint32_t>(cfg.get_uint("reps", 3));
  const auto max_pairs = static_cast<std::uint32_t>(cfg.get_uint("pairs", 64));
  const bool corona = cfg.get_bool("corona", true);
  const std::string out = cfg.get_string("out", "");
  const std::string model_name = cfg.get_string("model", "STMV");
  if (const auto unknown = cfg.unknown_keys(); !unknown.empty()) {
    std::string msg = "scale_sweep: unknown key(s):";
    for (const auto& k : unknown) msg += " " + k;
    std::fprintf(stderr, "%s\n", msg.c_str());
    return 1;
  }
  const auto model = md::find_model(model_name);
  if (!model.has_value()) {
    std::fprintf(stderr, "scale_sweep: unknown model '%s'\n",
                 model_name.c_str());
    return 1;
  }

  std::vector<sweep::SweepPoint> grid;
  const auto add_point = [&](workflow::Solution sol, const std::string& sname,
                             std::uint32_t pairs, std::uint32_t nodes) {
    workflow::EnsembleConfig c;
    c.solution = sol;
    c.pairs = pairs;
    c.nodes = nodes;
    c.workload.model = *model;
    c.workload.stride = model->stride;
    c.workload.frames = frames;
    c.repetitions = reps;
    c.base_seed = 1;
    grid.push_back({sname + "/pairs" + std::to_string(pairs) + "/nodes" +
                        std::to_string(nodes),
                    c});
  };
  for (std::uint32_t pairs = 1; pairs <= max_pairs; pairs *= 2) {
    // 8 ranks per node: 4 producer ranks per producer node, consumers
    // mirrored on the other half (split placement needs an even count).
    const std::uint32_t nodes = 2 * std::max(1u, (pairs + 7) / 8);
    add_point(workflow::Solution::kDyad, "dyad", pairs, nodes);
    add_point(workflow::Solution::kLustre, "lustre", pairs, nodes);
  }
  if (corona && max_pairs >= 2) {
    // Paper scale: the full Corona allotment, ranks spread thin.
    add_point(workflow::Solution::kDyad, "dyad-corona", max_pairs, 120);
    add_point(workflow::Solution::kLustre, "lustre-corona", max_pairs, 120);
  }

  const sweep::SweepResult result = sweep::run_sweep(std::move(grid), threads);
  const std::string csv = result.to_csv();
  if (!out.empty()) {
    std::ofstream f(out);
    if (!f) {
      std::fprintf(stderr, "scale_sweep: cannot write '%s'\n", out.c_str());
      return 1;
    }
    f << csv;
  } else {
    std::fputs(csv.c_str(), stdout);
  }
  for (const auto& point : result.points) {
    if (point.failed()) {
      std::fprintf(stderr, "scale_sweep: point '%s' failed: %s\n",
                   point.label.c_str(), point.error_text.c_str());
    }
  }
  // On a single-core host a "parallel" run measures thread overhead, not
  // speedup; flag it so downstream tooling (tools/bench.sh scale) can mark
  // the speedup invalid instead of reporting a misleading <1x.
  const unsigned host_threads =
      std::max(1u, std::thread::hardware_concurrency());
  if (host_threads == 1 && sweep::resolve_threads(threads) > 1) {
    std::fprintf(stderr,
                 "scale_sweep: warning: single hardware thread; the "
                 "thread-count speedup is not meaningful on this host\n");
  }
  // Machine-readable summary (tools/bench.sh scale parses this line).
  std::printf(
      "scale_sweep: points=%zu errors=%zu sim_events=%llu wall_s=%.3f "
      "events_per_s=%.0f threads=%u host_threads=%u\n",
      result.points.size(), result.errors,
      static_cast<unsigned long long>(result.total_sim_events),
      result.wall_seconds, result.events_per_second(),
      sweep::resolve_threads(threads), host_threads);
  return result.errors == 0 ? 0 : 1;
}
