// Ablation: storage path (DESIGN.md Sec. 3).
//
// Quantifies DYAD's storage design choices on the two-node STMV
// configuration (large frames stress the data path):
//
//   DYAD (default)     - buffered node-local staging (burst-buffer style);
//   DYAD (direct I/O)  - node-local staging with the page cache bypassed
//                        (every byte hits the NVMe twice on the consumer);
//   DYAD (no staging)  - consume the RDMA stream in place, no local copy;
//   Lustre             - all bytes through the shared parallel filesystem.
//
// Expected: no-staging < default < direct-IO << Lustre for movement; the
// default's extra copy buys re-read locality at modest cost.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace mdwf;
using namespace mdwf::bench;
using workflow::Solution;

constexpr std::uint64_t kFrames = 64;

std::vector<Case> make_cases() {
  std::vector<Case> cases;

  Case def;
  def.label = "DYAD-buffered";
  def.config =
      make_config(Solution::kDyad, 8, 2, md::kStmv, md::kStmv.stride, kFrames);
  cases.push_back(std::move(def));

  Case direct;
  direct.label = "DYAD-direct-io";
  direct.config =
      make_config(Solution::kDyad, 8, 2, md::kStmv, md::kStmv.stride, kFrames);
  direct.config.testbed.local_fs.direct_io = true;
  cases.push_back(std::move(direct));

  Case stream;
  stream.label = "DYAD-no-staging";
  stream.config =
      make_config(Solution::kDyad, 8, 2, md::kStmv, md::kStmv.stride, kFrames);
  stream.config.testbed.dyad.skip_consumer_staging = true;
  cases.push_back(std::move(stream));

  Case push;
  push.label = "DYAD-push-mode";
  push.config =
      make_config(Solution::kDyad, 8, 2, md::kStmv, md::kStmv.stride, kFrames);
  push.config.testbed.dyad.push_mode = true;
  cases.push_back(std::move(push));

  Case lustre;
  lustre.label = "Lustre";
  lustre.config = make_config(Solution::kLustre, 8, 2, md::kStmv,
                              md::kStmv.stride, kFrames);
  cases.push_back(std::move(lustre));

  return cases;
}

void report(const std::vector<Case>& cases) {
  print_panel("Ablation: storage path, production per frame (2 nodes, STMV, "
              "8 pairs)",
              cases, /*production=*/true, /*in_ms=*/true);
  print_panel("Ablation: storage path, consumption per frame (2 nodes, STMV, "
              "8 pairs)",
              cases, /*production=*/false, /*in_ms=*/true);

  std::printf("\nHeadlines (consumption movement):\n");
  print_headline("direct-IO staging cost vs buffered",
                 safe_ratio(cons_movement_us("DYAD-direct-io"),
                            cons_movement_us("DYAD-buffered")),
                 "page cache absorbs the staging copy");
  print_headline("buffered staging cost vs no staging",
                 safe_ratio(cons_movement_us("DYAD-buffered"),
                            cons_movement_us("DYAD-no-staging")),
                 "the local copy is cheap insurance");
  print_headline("Lustre movement vs DYAD buffered",
                 safe_ratio(cons_movement_us("Lustre"),
                            cons_movement_us("DYAD-buffered")),
                 "node-local staging wins");
  print_headline("pull movement vs push-mode movement",
                 safe_ratio(cons_movement_us("DYAD-buffered"),
                            cons_movement_us("DYAD-push-mode")),
                 "pushing overlaps the transfer with MD compute");
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, make_cases(), report);
}
