// Membership frontier sweep: MTTR vs detection latency for the declare-dead
// policy under permanent node loss.
//
// The grid sweeps the declare policy's silence ceiling (the phi-confirm
// window scales as a quarter of it) for a DYAD ensemble, against two fault
// scenarios.  Under `node-loss` (a node really dies) an eager policy wins:
// detection latency IS dead time, so MTTR falls with the ceiling.  Under
// `heal-after-declare` (a 1.2 s one-way partition, the node is fine) an
// eager policy fires a spurious declare — terminal by design, so the
// healthy node is fenced and its ranks migrate for nothing — while a
// conservative one (confirm window past the partition length) rides it
// out and pays nothing.  That tension is the frontier; every point still
// finishes with zero data loss, the policies just pay different MTTR.
//
//   membership_sweep [ceilings=60,120,250,500,1000,8000] [frames=8]
//                    [reps=2] [threads=1] [out=<csv path>]
//
// stdout carries one "frontier:" line per (ceiling, scenario) point, then a
// machine-readable summary line (tools/bench.sh membership turns a re-run
// pair into BENCH_pr9.json).  The CSV excludes wall-clock, so re-runs at
// any thread count are byte-identical.  Exit 0 when every point ran clean,
// every faulted point delivered the full frame set, and the no-fault
// overhead of leaving the plane enabled stays within the 2% gate.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "mdwf/common/keyval.hpp"
#include "mdwf/sweep/sweep.hpp"
#include "mdwf/workflow/config.hpp"

using namespace mdwf;

namespace {

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) items.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

workflow::EnsembleConfig base_config(const std::string& faults,
                                     std::uint64_t frames,
                                     std::uint64_t reps) {
  KeyValueConfig point;
  point.set("solution", "dyad");
  point.set("pairs", "2");
  point.set("frames", std::to_string(frames));
  point.set("reps", std::to_string(reps));
  if (!faults.empty()) point.set("faults", faults);
  workflow::EnsembleConfig defaults;
  defaults.nodes = 2;
  return workflow::parse_ensemble_config(point, defaults);
}

}  // namespace

int main(int argc, char** argv) {
  KeyValueConfig cfg;
  cfg.parse_args(argc, argv);
  const std::string ceilings_csv =
      cfg.get_string("ceilings", "60,120,250,500,1000,8000");
  const std::uint64_t frames = cfg.get_uint("frames", 8);
  const std::uint64_t reps = cfg.get_uint("reps", 2);
  const auto threads = static_cast<std::uint32_t>(cfg.get_uint("threads", 1));
  const std::string out = cfg.get_string("out", "");
  if (const auto unknown = cfg.unknown_keys(); !unknown.empty()) {
    std::string msg = "membership_sweep: unknown key(s):";
    for (const auto& k : unknown) msg += " " + k;
    std::fprintf(stderr, "%s\n", msg.c_str());
    return 1;
  }

  const std::vector<std::string> ceilings = split_list(ceilings_csv);
  static constexpr const char* kScenarios[] = {"node-loss",
                                               "heal-after-declare"};

  std::vector<sweep::SweepPoint> grid;
  // Two no-fault baselines lead the grid: plane off (the reference
  // makespan) and plane on (its price: heartbeats + declare scans).
  for (const bool membership : {false, true}) {
    workflow::EnsembleConfig c = base_config("", frames, reps);
    c.testbed.membership.enabled = membership;
    grid.push_back({std::string("baseline/") + (membership ? "on" : "off"),
                    c});
  }
  for (const std::string& ceiling : ceilings) {
    for (const char* scenario : kScenarios) {
      workflow::EnsembleConfig c = base_config(scenario, frames, reps);
      c.testbed.membership.enabled = true;
      const auto ceiling_ms = static_cast<std::int64_t>(std::stoll(ceiling));
      c.testbed.membership.declare.silence_ceiling =
          Duration::milliseconds(ceiling_ms);
      // The phi-confirm path stays proportionally eager: a quarter of the
      // ceiling, floored at one heartbeat period.  Past ~5 s the confirm
      // window exceeds the heal-after-declare partition (1.2 s) and the
      // policy rides the transient out instead of declaring.
      c.testbed.membership.declare.confirm_window =
          Duration::milliseconds(ceiling_ms / 4 > 10 ? ceiling_ms / 4 : 10);
      grid.push_back({"ceiling" + ceiling + "/" + scenario, c});
    }
  }

  const sweep::SweepResult result = sweep::run_sweep(std::move(grid), threads);
  for (const sweep::PointResult& pt : result.points) {
    if (pt.failed()) {
      std::fprintf(stderr, "membership_sweep: point '%s' failed: %s\n",
                   pt.label.c_str(), pt.error_text.c_str());
    }
  }
  if (result.errors != 0) return 1;

  const double makespan_off = result.points[0].result.makespan_s.mean();
  const double makespan_on = result.points[1].result.makespan_s.mean();
  const double overhead_pct =
      makespan_off > 0.0
          ? 100.0 * (makespan_on - makespan_off) / makespan_off
          : 0.0;

  std::string csv =
      "ceiling_ms,scenario,declares,detect_ms,migrations,stale_rejects,"
      "frames_lost,frames_consumed,crash_recoveries,makespan_s,mttr_s\n";
  {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "0,none-off,0,0.0,0,0,0,%llu,0,%.4f,0.0\n",
                  static_cast<unsigned long long>(
                      result.points[0].result.counters.get("frames_consumed")),
                  makespan_off);
    csv += line;
    std::snprintf(line, sizeof(line),
                  "0,none-on,0,0.0,0,0,0,%llu,0,%.4f,0.0\n",
                  static_cast<unsigned long long>(
                      result.points[1].result.counters.get("frames_consumed")),
                  makespan_on);
    csv += line;
  }

  bool all_delivered = true;
  std::size_t idx = 2;
  for (const std::string& ceiling : ceilings) {
    for (const char* scenario : kScenarios) {
      const workflow::EnsembleResult& r = result.points[idx++].result;
      const auto declares = r.counters.get("membership_declares");
      const double detect_ms =
          declares > 0
              ? static_cast<double>(r.counters.get("declare_latency_us")) /
                    (1000.0 * static_cast<double>(declares))
              : 0.0;
      const auto lost = r.counters.get("frames_lost");
      const double makespan = r.makespan_s.mean();
      // MTTR proxy: the makespan the loss-plus-recovery added on top of
      // the plane-on fault-free run.
      const double mttr = makespan - makespan_on;
      all_delivered = all_delivered && lost == 0;
      char line[320];
      std::snprintf(
          line, sizeof(line),
          "%s,%s,%llu,%.1f,%llu,%llu,%llu,%llu,%llu,%.4f,%.4f\n",
          ceiling.c_str(), scenario,
          static_cast<unsigned long long>(declares), detect_ms,
          static_cast<unsigned long long>(r.counters.get("rank_migrations")),
          static_cast<unsigned long long>(
              r.counters.get("stale_epoch_rejects")),
          static_cast<unsigned long long>(lost),
          static_cast<unsigned long long>(r.counters.get("frames_consumed")),
          static_cast<unsigned long long>(r.counters.get("crash_recoveries")),
          makespan, mttr);
      csv += line;
      std::printf(
          "frontier: ceiling_ms=%s scenario=%s detect_ms=%.1f mttr_s=%.4f "
          "declares=%llu migrations=%llu stale_rejects=%llu frames_lost=%llu\n",
          ceiling.c_str(), scenario, detect_ms, mttr,
          static_cast<unsigned long long>(declares),
          static_cast<unsigned long long>(r.counters.get("rank_migrations")),
          static_cast<unsigned long long>(
              r.counters.get("stale_epoch_rejects")),
          static_cast<unsigned long long>(lost));
    }
  }

  if (!out.empty()) {
    std::ofstream f(out);
    if (!f) {
      std::fprintf(stderr, "membership_sweep: cannot write '%s'\n",
                   out.c_str());
      return 1;
    }
    f << csv;
  } else {
    std::fputs(csv.c_str(), stdout);
  }

  std::printf(
      "membership_sweep: points=%zu errors=%zu overhead_pct=%.3f "
      "all_delivered=%d sim_events=%llu\n",
      result.points.size(), result.errors, overhead_pct,
      all_delivered ? 1 : 0,
      static_cast<unsigned long long>(result.total_sim_events));
  // Gates: zero data loss everywhere, and the idle plane must cost <= 2%.
  if (!all_delivered) return 1;
  return std::fabs(overhead_pct) <= 2.0 ? 0 : 1;
}
