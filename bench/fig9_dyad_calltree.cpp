// Figure 9: Thicket call-tree analysis of DYAD, JAC vs STMV.
//
// Paper setup (Sec. IV-E, Fig. 9): the Fig. 8 configuration (2 nodes,
// 16 pairs) analyzed with Thicket.  The consumer call tree is
//   consume / dyad_consume / {dyad_fetch, dyad_get_data, dyad_cons_store,
//                             read_single_buf}
// Findings reproduced:
//   - STMV moves 45.3x more data than JAC but dyad_get_data+dyad_cons_store
//     grows far less than 45.3x (DYAD data movement scales well);
//   - dyad_fetch (KVS synchronization) is ~2.1x *cheaper* for STMV: the
//     consumer arrives later relative to the producer's commit, so the
//     metadata is already visible and fewer lookup/watch rounds hit the KVS.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace mdwf;
using namespace mdwf::bench;
using workflow::Solution;

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (const auto& model : {md::kJac, md::kStmv}) {
    Case c;
    c.label = "DYAD/" + std::string(model.name);
    c.config = make_config(Solution::kDyad, 16, 2, model, model.stride);
    cases.push_back(std::move(c));
  }
  return cases;
}

double node_us(const perf::StatTree& t, const std::string& path) {
  const auto* n = t.find(path);
  return n == nullptr ? 0.0 : n->inclusive_us.mean();
}

// Steady-state per-call cost: excludes the single cold-start call (the
// first-frame KVS wait), as the paper's warm-pipeline trees reflect.
double steady_us(const perf::StatTree& t, const std::string& path) {
  const auto* n = t.find(path);
  return n == nullptr ? 0.0 : n->steady_per_call_us();
}

void report(const std::vector<Case>& cases) {
  perf::StatTree jac, stmv;
  for (const auto& c : cases) {
    const auto& r = Registry::instance().at(c.label);
    auto consumers = r.thicket.filter("role", "consumer");
    auto agg = consumers.aggregate();
    std::printf("\nFig 9(%s): DYAD consumer call tree, %s\n",
                c.label == "DYAD/JAC" ? "a" : "b", c.label.c_str());
    std::printf("%s", agg.render().c_str());
    if (c.label == "DYAD/JAC") {
      jac = std::move(agg);
    } else {
      stmv = std::move(agg);
    }
  }

  const std::string base = "consume/dyad_consume/";
  const double jac_move = node_us(jac, base + "dyad_get_data") +
                          node_us(jac, base + "dyad_cons_store") +
                          node_us(jac, base + "read_single_buf");
  const double stmv_move = node_us(stmv, base + "dyad_get_data") +
                           node_us(stmv, base + "dyad_cons_store") +
                           node_us(stmv, base + "read_single_buf");
  const double jac_fetch = steady_us(jac, base + "dyad_fetch");
  const double stmv_fetch = steady_us(stmv, base + "dyad_fetch");

  std::printf("\nHeadlines:\n");
  print_headline("STMV/JAC data volume", 45.3, "45.3x");
  print_headline("STMV/JAC DYAD movement cost (get+store+read)",
                 safe_ratio(stmv_move, jac_move),
                 "33.6x (less than the 45.3x data growth)");
  print_headline(
      "steady-state dyad_fetch JAC/STMV (KVS stress reduction)",
      safe_ratio(jac_fetch, stmv_fetch),
      "2.1x cheaper for STMV (consumer arrives after visibility)");
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, make_cases(), report);
}
