// Shared infrastructure for the per-figure benchmark binaries.
//
// Each figure binary registers one google-benchmark per bar group (a
// solution x scale point), runs the corresponding ensemble once (the run is
// deterministic; the statistical spread comes from the 10 seeded
// repetitions inside), exports movement/idle counters, and finally prints a
// paper-style table plus the headline ratios next to the paper's published
// values.
#pragma once

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "mdwf/workflow/ensemble.hpp"

namespace mdwf::bench {

// Named ensemble configuration (one bar group in a figure).
struct Case {
  std::string label;
  workflow::EnsembleConfig config;
};

// Results keyed by case label, filled as benchmarks execute.
class Registry {
 public:
  static Registry& instance();

  void put(const std::string& label, workflow::EnsembleResult r);
  const workflow::EnsembleResult& at(const std::string& label) const;
  bool contains(const std::string& label) const;

 private:
  std::map<std::string, workflow::EnsembleResult> results_;
};

// Builds a standard ensemble config (10 repetitions, base seed 1).
workflow::EnsembleConfig make_config(workflow::Solution solution,
                                     std::uint32_t pairs, std::uint32_t nodes,
                                     md::MolecularModel model,
                                     std::uint64_t stride,
                                     std::uint64_t frames = 128);

// Registers a google-benchmark that runs `c.config` once and records the
// result under `c.label`, with movement/idle counters attached.
void register_case(const Case& c);

// --- Reporting --------------------------------------------------------------

// Production (a) and consumption (b) tables in the paper's decomposition:
// data movement vs idle, mean +/- std over repetitions.  `in_ms` selects
// milliseconds (consumption) vs microseconds (production).
void print_panel(const std::string& title, const std::vector<Case>& cases,
                 bool production, bool in_ms);

// One headline comparison line: "<name>: measured Rx (paper: Px)".
void print_headline(const std::string& name, double measured_ratio,
                    const std::string& paper_value);

double safe_ratio(double num, double den);

// Convenience accessors on a finished case.
double prod_total_us(const std::string& label);
double cons_total_us(const std::string& label);
double prod_movement_us(const std::string& label);
double cons_movement_us(const std::string& label);

// Standard main body: register all cases, run benchmarks, then call
// `report`.  Returns exit code.
int run_bench_main(int argc, char** argv, const std::vector<Case>& cases,
                   void (*report)(const std::vector<Case>&));

}  // namespace mdwf::bench
