// Ablation: in-situ vs in-transit analytics placement (DESIGN.md Sec. 3).
//
// The paper's reference workload places analytics on dedicated nodes
// ("in transit" over the fabric); its motivating prior work [Taufer et al.
// 2019] also studies in-situ placement where each consumer shares its
// producer's node.  This ablation quantifies that trade on the simulated
// testbed for JAC and STMV:
//
//   DYAD in-situ     - colocated pairs, flock warm path, zero fabric bytes;
//   DYAD in-transit  - split nodes, KVS + RDMA pull (the paper's config);
//   XFS  in-situ     - colocated with coarse manual sync (baseline).
//
// In-situ saves the transfer but steals cores/memory bandwidth from the
// simulation in real systems; the simulator prices only the data path, so
// the output quantifies the movement side of the trade.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace mdwf;
using namespace mdwf::bench;
using workflow::Placement;
using workflow::Solution;

constexpr std::uint64_t kFrames = 64;

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (const auto& model : {md::kJac, md::kStmv}) {
    const std::string m(model.name);
    Case insitu;
    insitu.label = "DYAD-insitu/" + m;
    insitu.config =
        make_config(Solution::kDyad, 8, 2, model, model.stride, kFrames);
    insitu.config.placement = Placement::kColocated;
    cases.push_back(std::move(insitu));

    Case intransit;
    intransit.label = "DYAD-intransit/" + m;
    intransit.config =
        make_config(Solution::kDyad, 8, 2, model, model.stride, kFrames);
    cases.push_back(std::move(intransit));

    Case xfs;
    xfs.label = "XFS-insitu/" + m;
    xfs.config =
        make_config(Solution::kXfs, 8, 2, model, model.stride, kFrames);
    xfs.config.placement = Placement::kColocated;
    cases.push_back(std::move(xfs));
  }
  return cases;
}

void report(const std::vector<Case>& cases) {
  print_panel("Ablation: placement, consumption per frame (8 pairs)", cases,
              /*production=*/false, /*in_ms=*/true);
  std::printf("\nHeadlines (consumption movement):\n");
  for (const char* m : {"JAC", "STMV"}) {
    print_headline(std::string("in-transit cost vs in-situ, ") + m,
                   safe_ratio(cons_movement_us("DYAD-intransit/" +
                                               std::string(m)),
                              cons_movement_us("DYAD-insitu/" +
                                               std::string(m))),
                   "fabric pull vs local flock");
  }
  print_headline("DYAD in-situ vs XFS in-situ (overall, JAC)",
                 safe_ratio(cons_total_us("XFS-insitu/JAC"),
                            cons_total_us("DYAD-insitu/JAC")),
                 "automatic sync still wins colocated");
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, make_cases(), report);
}
