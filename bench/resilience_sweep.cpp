// Resilience sweep: producer-consumer makespan under injected faults.
//
// Runs on the parallel replica runner (mdwf::sweep): threads=N fans each
// scenario's seeded repetitions across N workers with byte-identical tables.
//
// A what-if study the paper never ran: how do DYAD (with its recovery
// protocol enabled), colocated XFS, Lustre, and the PR-6 streaming data
// plane respond when the cluster misbehaves?  Each named fault scenario (mdwf/fault/plan.hpp) is applied to
// the same small JAC ensemble on every solution:
//
//   none           healthy baseline
//   broker-outage  the Flux KVS broker dies briefly and loses pending
//                  commits — only DYAD depends on the broker, and only its
//                  retry/re-publish protocol carries it through
//   slow-nvme      every node SSD at 30% bandwidth — hits the node-local
//                  solutions (DYAD, XFS) where they live
//   ost-storm      recurring heavy load on random OSTs — hits Lustre's
//                  data path and DYAD's background write-through only
//   flaky-fabric   recurring NIC degradation episodes — hits anything that
//                  moves bytes between nodes
//   node-crash     node 0 loses power mid-run: torn writes, dropped page
//                  cache, ranks restart from their checkpoint
//   bit-flip       nonzero silent-corruption rates everywhere; consumers
//                  verify CRC32C tags and re-fetch corrupt frames
//   crash-flip     both at once (the PR-3 acceptance scenario); the delta
//                  vs "none" is the recovered-run overhead
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "mdwf/common/format.hpp"
#include "mdwf/common/table.hpp"
#include "mdwf/fault/plan.hpp"
#include "mdwf/tenant/tenant.hpp"

namespace {

using namespace mdwf;
using namespace mdwf::bench;
using workflow::Placement;
using workflow::Solution;

const std::vector<std::string> kScenarios = {
    "none",         "broker-outage", "slow-nvme", "ost-storm",
    "flaky-fabric", "node-crash",    "bit-flip",  "crash-flip"};

bool crash_or_flip(const std::string& scenario) {
  return scenario == "node-crash" || scenario == "bit-flip" ||
         scenario == "crash-flip";
}

std::string label_for(Solution solution, const std::string& scenario) {
  return std::string(workflow::to_string(solution)) + "/" + scenario;
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (const auto solution : {Solution::kDyad, Solution::kXfs,
                              Solution::kLustre, Solution::kStream}) {
    for (const auto& scenario : kScenarios) {
      Case c;
      c.label = label_for(solution, scenario);
      c.config = make_config(solution, /*pairs=*/2, /*nodes=*/2, md::kJac,
                             md::kJac.stride, /*frames=*/16);
      c.config.repetitions = 2;
      if (solution == Solution::kXfs) {
        c.config.placement = Placement::kColocated;
      }
      fault::ScenarioShape shape;
      shape.compute_nodes = c.config.nodes;
      shape.ost_count = c.config.testbed.lustre.ost_count;
      shape.seed = c.config.base_seed;
      c.config.testbed.faults = fault::make_scenario(scenario, shape);
      // DYAD runs with the full recovery protocol; XFS and Lustre have no
      // broker dependence and need no retry to survive these scenarios.
      if (solution == Solution::kDyad) {
        c.config.testbed.dyad.retry.enabled = true;
        c.config.testbed.dyad.retry.lustre_fallback = true;
      }
      // Crash/corruption scenarios run with end-to-end checksums on (every
      // solution must deliver the complete verified frame set); checkpoints
      // auto-enable off the crash windows.
      if (crash_or_flip(scenario)) {
        c.config.testbed.integrity.enabled = true;
      }
      cases.push_back(std::move(c));
    }
  }
  return cases;
}

void report(const std::vector<Case>& cases) {
  std::printf(
      "\nResilience sweep: makespan under fault injection "
      "(JAC, 2 pairs, 2 nodes, 16 frames)\n\n");
  TextTable t({"scenario", "DYAD", "XFS", "Lustre", "Stream",
               "DYAD recovery"});
  for (const auto& scenario : kScenarios) {
    auto cell = [&](Solution s) {
      const auto& r = Registry::instance().at(label_for(s, scenario));
      return format_double(r.makespan_s.mean(), 3) + " s";
    };
    const auto& dyad = Registry::instance().at(
        label_for(Solution::kDyad, scenario));
    const std::string recovery =
        crash_or_flip(scenario)
            ? std::to_string(dyad.counters.get("crash_recoveries")) + " restarts, " +
                  std::to_string(dyad.counters.get("frames_reexecuted")) + " re-executed, " +
                  std::to_string(dyad.counters.get("integrity_refetches")) + " re-fetches"
            : std::to_string(dyad.counters.get("dyad_recovery_retries")) + " retries, " +
                  std::to_string(dyad.counters.get("dyad_republishes")) + " republishes, " +
                  std::to_string(dyad.counters.get("dyad_failovers")) + " failovers";
    t.add_row({scenario, cell(Solution::kDyad), cell(Solution::kXfs),
               cell(Solution::kLustre), cell(Solution::kStream), recovery});
  }
  std::printf("%s\n", t.render().c_str());

  // Recovered-run overhead: crash-flip vs the fault-free baseline, the
  // headline number BENCH_pr3.json records.
  std::printf("recovered-run overhead vs fault-free (makespan):\n");
  for (const auto s : {Solution::kDyad, Solution::kXfs, Solution::kLustre,
                       Solution::kStream}) {
    const auto& base = Registry::instance().at(label_for(s, "none"));
    const auto& worst = Registry::instance().at(label_for(s, "crash-flip"));
    std::printf("  %-6s %s%%  (unrecovered reads: %llu)\n",
                std::string(workflow::to_string(s)).c_str(),
                format_double((safe_ratio(worst.makespan_s.mean(),
                                          base.makespan_s.mean()) -
                               1.0) *
                                  100.0,
                              1)
                    .c_str(),
                static_cast<unsigned long long>(worst.counters.get("integrity_unrecovered")));
  }
  // Co-tenant resilience: the same DYAD victim, but the crash-flip chaos
  // now runs in a NEIGHBOR tenant on a shared testbed (quotas armed).  The
  // victim's makespan delta vs running solo is the cross-tenant blast
  // radius — the isolation machinery's job is to keep it at noise level
  // while the neighbor itself recovers completely.
  {
    tenant::MultiTenantConfig mc;
    mc.repetitions = 2;
    mc.base_seed = 1;
    tenant::TenantSpec victim;
    victim.name = "victim";
    victim.solution = Solution::kDyad;
    victim.pairs = 2;
    victim.nodes = 2;
    victim.workload.frames = 16;
    mc.tenants.push_back(victim);
    tenant::TenantSpec chaotic = victim;
    chaotic.name = "neighbor";
    chaotic.faults = "crash-flip";
    mc.tenants.push_back(chaotic);
    mc.testbed.integrity.enabled = true;
    const auto co = tenant::run_multi_tenant(mc);

    tenant::MultiTenantConfig solo = mc;
    solo.tenants.resize(1);
    const auto alone = tenant::run_multi_tenant(solo);

    const auto& v = co.tenants[0].result;
    const auto& n = co.tenants[1].result;
    std::printf(
        "co-tenant crash-flip (neighbor tenant on a shared testbed, "
        "quotas armed):\n"
        "  victim makespan %s s solo -> %s s co-tenant (%s%% blast "
        "radius)\n"
        "  victim recovery activity: %llu restarts, %llu re-executed "
        "(must be 0)\n"
        "  neighbor recovered: %llu restarts, %llu re-executed, %llu "
        "re-fetches, %llu unrecovered\n",
        format_double(alone.tenants[0].result.makespan_s.mean(), 3).c_str(),
        format_double(v.makespan_s.mean(), 3).c_str(),
        format_double((safe_ratio(v.makespan_s.mean(),
                                  alone.tenants[0].result.makespan_s.mean()) -
                       1.0) *
                          100.0,
                      2)
            .c_str(),
        static_cast<unsigned long long>(v.counters.get("crash_recoveries")),
        static_cast<unsigned long long>(v.counters.get("frames_reexecuted")),
        static_cast<unsigned long long>(n.counters.get("crash_recoveries")),
        static_cast<unsigned long long>(n.counters.get("frames_reexecuted")),
        static_cast<unsigned long long>(n.counters.get("integrity_refetches")),
        static_cast<unsigned long long>(
            co.shared.get("integrity_unrecovered")));
  }

  std::printf(
      "\nReading guide: broker-outage perturbs only DYAD (its recovery\n"
      "re-publish closes the gap); slow-nvme hits node-local staging;\n"
      "ost-storm hits Lustre; flaky-fabric hits every cross-node byte;\n"
      "node-crash/bit-flip/crash-flip measure checkpoint-restart and\n"
      "checksum re-fetch recovery — every run must still deliver the\n"
      "complete verified frame set.\n");
  (void)cases;
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, make_cases(), report);
}
