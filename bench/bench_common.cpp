#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string_view>

#include "mdwf/common/assert.hpp"
#include "mdwf/common/format.hpp"
#include "mdwf/common/keyval.hpp"
#include "mdwf/common/table.hpp"
#include "mdwf/sweep/sweep.hpp"
#include "mdwf/workflow/config.hpp"

namespace mdwf::bench {

Registry& Registry::instance() {
  static Registry r;
  return r;
}

void Registry::put(const std::string& label, workflow::EnsembleResult r) {
  results_.insert_or_assign(label, std::move(r));
}

const workflow::EnsembleResult& Registry::at(const std::string& label) const {
  const auto it = results_.find(label);
  MDWF_ASSERT_MSG(it != results_.end(), "benchmark case did not run");
  return it->second;
}

bool Registry::contains(const std::string& label) const {
  return results_.contains(label);
}

workflow::EnsembleConfig make_config(workflow::Solution solution,
                                     std::uint32_t pairs, std::uint32_t nodes,
                                     md::MolecularModel model,
                                     std::uint64_t stride,
                                     std::uint64_t frames) {
  workflow::EnsembleConfig c;
  c.solution = solution;
  c.pairs = pairs;
  c.nodes = nodes;
  c.workload.model = model;
  c.workload.stride = stride;
  c.workload.frames = frames;
  c.repetitions = 10;
  c.base_seed = 1;
  return c;
}

namespace {

// With MDWF_CSV_DIR set, each case dumps its aggregated consumer call tree
// for external plotting.
void maybe_export_csv(const std::string& label,
                      const workflow::EnsembleResult& result) {
  const char* dir = std::getenv("MDWF_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::filesystem::create_directories(dir);
  std::string name = label;
  for (char& ch : name) {
    if (ch == '/' || ch == ' ') ch = '_';
  }
  std::ofstream out(std::filesystem::path(dir) / (name + ".csv"));
  if (!out) return;
  out << result.thicket.filter("role", "consumer").aggregate().to_csv();
}

}  // namespace

void register_case(const Case& c) {
  const Case copy = c;
  benchmark::RegisterBenchmark(
      copy.label.c_str(),
      [copy](benchmark::State& state) {
        for (auto _ : state) {
          // Parallel replica runner: fans the case's seeded repetitions
          // across `threads=` workers (default 1) with byte-identical
          // aggregates for every thread count.
          auto result = sweep::run_ensemble(copy.config);
          state.counters["prod_move_us"] = result.prod_movement_us.mean();
          state.counters["prod_idle_us"] = result.prod_idle_us.mean();
          state.counters["cons_move_us"] = result.cons_movement_us.mean();
          state.counters["cons_idle_us"] = result.cons_idle_us.mean();
          state.counters["makespan_s"] = result.makespan_s.mean();
          maybe_export_csv(copy.label, result);
          Registry::instance().put(copy.label, std::move(result));
        }
      })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
}

double safe_ratio(double num, double den) {
  return den > 0.0 ? num / den : 0.0;
}

namespace {

std::string pm(double mean, double std, double scale, int decimals) {
  return format_double(mean / scale, decimals) + " +/- " +
         format_double(std / scale, decimals);
}

}  // namespace

void print_panel(const std::string& title, const std::vector<Case>& cases,
                 bool production, bool in_ms) {
  const double scale = in_ms ? 1000.0 : 1.0;
  const char* unit = in_ms ? "ms" : "us";
  TextTable t({"case", std::string("movement (") + unit + ")",
               std::string("idle (") + unit + ")",
               std::string("total (") + unit + ")"});
  for (const auto& c : cases) {
    const auto& r = Registry::instance().at(c.label);
    const auto& move = production ? r.prod_movement_us : r.cons_movement_us;
    const auto& idle = production ? r.prod_idle_us : r.cons_idle_us;
    t.add_row({c.label, pm(move.mean(), move.stddev(), scale, 2),
               pm(idle.mean(), idle.stddev(), scale, 2),
               format_double((move.mean() + idle.mean()) / scale, 2)});
  }
  std::printf("\n%s\n%s", title.c_str(), t.render().c_str());
}

void print_headline(const std::string& name, double measured_ratio,
                    const std::string& paper_value) {
  std::printf("  %-58s measured %6.1fx   (paper: %s)\n", name.c_str(),
              measured_ratio, paper_value.c_str());
}

double prod_total_us(const std::string& label) {
  return Registry::instance().at(label).mean_production_us();
}
double cons_total_us(const std::string& label) {
  return Registry::instance().at(label).mean_consumption_us();
}
double prod_movement_us(const std::string& label) {
  return Registry::instance().at(label).prod_movement_us.mean();
}
double cons_movement_us(const std::string& label) {
  return Registry::instance().at(label).cons_movement_us.mean();
}

int run_bench_main(int argc, char** argv, const std::vector<Case>& cases,
                   void (*report)(const std::vector<Case>&)) {
  // `key=value` tokens override every case's ensemble config (the same keys
  // mdwf_run accepts: frames, reps, seed, trace, faults, ...); everything
  // else is handed to google-benchmark.
  KeyValueConfig cfg;
  std::vector<char*> bench_args;
  bench_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto eq = arg.find('=');
    if (!arg.starts_with('-') && eq != std::string_view::npos && eq > 0) {
      cfg.set(std::string(arg.substr(0, eq)),
              std::string(arg.substr(eq + 1)));
    } else {
      bench_args.push_back(argv[i]);
    }
  }

  std::vector<Case> bound = cases;
  if (!cfg.keys().empty()) {
    try {
      for (auto& c : bound) {
        c.config = workflow::parse_ensemble_config(cfg, c.config);
      }
    } catch (const ConfigError& e) {
      // Covers unknown keys too: the binding fails fast with a
      // did-you-mean diagnostic.
      std::fprintf(stderr, "bench: %s\n", e.what());
      return 1;
    }
  }

  for (const auto& c : bound) register_case(c);
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Benchmark filters can skip cases; only report when everything ran.
  for (const auto& c : bound) {
    if (!Registry::instance().contains(c.label)) return 0;
  }
  report(bound);
  return 0;
}

}  // namespace mdwf::bench
