// Figure 8: molecular-model size scaling, DYAD vs Lustre.
//
// Paper setup (Sec. IV-E): 2 nodes, 16 producer-consumer pairs, four
// molecular models (JAC, ApoA1, F1 ATPase, STMV) with the Table II strides
// so every model produces a frame every ~0.82 s.  Findings reproduced:
//   (a) production time grows with model size for both; the absolute gap
//       widens (paper: DYAD 2.1x..6.3x faster, larger ratio for smaller
//       models whose fixed RPC overheads dominate);
//   (b) DYAD's consumption movement advantage with larger frames
//       (node-local staging + RDMA vs shared OSTs), overall 121x..333.8x.
//
// Runs on the parallel replica runner (mdwf::sweep): threads=N fans each
// case's 10 seeded repetitions across N workers with byte-identical tables.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace mdwf;
using namespace mdwf::bench;
using workflow::Solution;

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (const auto solution : {Solution::kDyad, Solution::kLustre}) {
    for (const auto& model : md::kAllModels) {
      Case c;
      c.label = std::string(to_string(solution)) + "/" +
                std::string(model.name);
      c.config = make_config(solution, /*pairs=*/16, /*nodes=*/2, model,
                             model.stride);
      cases.push_back(std::move(c));
    }
  }
  return cases;
}

void report(const std::vector<Case>& cases) {
  print_panel("Fig 8(a): data production time per frame (2 nodes, 16 pairs)",
              cases, /*production=*/true, /*in_ms=*/true);
  print_panel("Fig 8(b): data consumption time per frame (2 nodes, 16 pairs)",
              cases, /*production=*/false, /*in_ms=*/true);

  std::printf("\nHeadlines:\n");
  for (const auto& model : md::kAllModels) {
    const std::string name(model.name);
    print_headline(
        "production speedup DYAD vs Lustre, " + name,
        safe_ratio(prod_total_us("Lustre/" + name),
                   prod_total_us("DYAD/" + name)),
        "2.1x..6.3x across models");
    print_headline(
        "consumption movement speedup DYAD vs Lustre, " + name,
        safe_ratio(cons_movement_us("Lustre/" + name),
                   cons_movement_us("DYAD/" + name)),
        "1.6x..6.0x across models");
    print_headline(
        "overall consumption speedup DYAD vs Lustre, " + name,
        safe_ratio(cons_total_us("Lustre/" + name),
                   cons_total_us("DYAD/" + name)),
        "121.0x..333.8x across models");
  }
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, make_cases(), report);
}
