// Table II: stride for each molecular model — steps/second, ms/step,
// stride, and resulting frame frequency — plus a simulated validation that
// producers emit frames at the same wall frequency for every model.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "mdwf/common/format.hpp"
#include "mdwf/common/table.hpp"
#include "mdwf/md/models.hpp"
#include "mdwf/workflow/ensemble.hpp"

namespace {

using namespace mdwf;

// Measures the achieved frame period of a 1-pair DYAD run per model; the
// paper's premise is that the Table II strides equalize data-generation
// frequency across models.
void BM_AchievedFramePeriod(benchmark::State& state) {
  const auto& model = md::kAllModels[static_cast<std::size_t>(state.range(0))];
  double period_s = 0.0;
  for (auto _ : state) {
    workflow::EnsembleConfig c;
    c.solution = workflow::Solution::kDyad;
    c.pairs = 1;
    c.nodes = 2;
    c.workload.model = model;
    c.workload.stride = model.stride;
    c.workload.frames = 16;
    c.repetitions = 2;
    const auto r = workflow::run_ensemble(c);
    // Producer-side makespan per frame approximates the emission period.
    period_s = r.makespan_s.mean() / static_cast<double>(c.workload.frames);
    benchmark::DoNotOptimize(period_s);
  }
  state.counters["frame_period_s"] = period_s;
  state.SetLabel(std::string(model.name));
}
BENCHMARK(BM_AchievedFramePeriod)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void print_table2() {
  TextTable t({"Name", "Steps/second", "ms/step", "Stride", "Frequency (s)"});
  for (const auto& m : md::kAllModels) {
    t.add_row({std::string(m.name), format_double(m.steps_per_second),
               format_double(m.ms_per_step()), std::to_string(m.stride),
               format_double(m.frame_period_seconds())});
  }
  std::printf("\nTable II: stride for each molecular model\n%s",
              t.render().c_str());
  std::printf("(paper: all frequencies equal at 0.82 s)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table2();
  return 0;
}
