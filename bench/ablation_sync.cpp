// Ablation: synchronization protocol (DESIGN.md Sec. 3).
//
// Quantifies the two synchronization mechanisms the paper credits for
// DYAD's consumption advantage, on the single-node JAC configuration:
//
//   DYAD (multi-protocol) - KVS first touch, flock afterwards (default);
//   DYAD (KVS-only)       - warm flock path disabled; every consume pays a
//                           KVS lookup round (and the staging copy);
//   XFS  (coarse-grained) - manual barrier sync, serialized iterations.
//
// Expected ordering: multi-protocol < KVS-only << coarse-grained.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace mdwf;
using namespace mdwf::bench;
using workflow::Solution;

std::vector<Case> make_cases() {
  std::vector<Case> cases;

  Case multi;
  multi.label = "DYAD-multiprotocol";
  multi.config = make_config(Solution::kDyad, 4, 1, md::kJac, md::kJac.stride);
  cases.push_back(std::move(multi));

  Case kvs_only;
  kvs_only.label = "DYAD-kvs-only";
  kvs_only.config =
      make_config(Solution::kDyad, 4, 1, md::kJac, md::kJac.stride);
  kvs_only.config.testbed.dyad.force_kvs_sync = true;
  cases.push_back(std::move(kvs_only));

  Case coarse;
  coarse.label = "XFS-coarse";
  coarse.config = make_config(Solution::kXfs, 4, 1, md::kJac, md::kJac.stride);
  cases.push_back(std::move(coarse));

  return cases;
}

void report(const std::vector<Case>& cases) {
  print_panel("Ablation: synchronization protocol, consumption per frame "
              "(single node, JAC, 4 pairs)",
              cases, /*production=*/false, /*in_ms=*/true);

  std::printf("\nHeadlines:\n");
  print_headline("KVS-only consume *movement* vs multi-protocol",
                 safe_ratio(cons_movement_us("DYAD-kvs-only"),
                            cons_movement_us("DYAD-multiprotocol")),
                 "warm flock path saves per-frame KVS rounds");
  print_headline("coarse-grained cost vs multi-protocol",
                 safe_ratio(cons_total_us("XFS-coarse"),
                            cons_total_us("DYAD-multiprotocol")),
                 "serialization dominates everything else");
  print_headline("coarse-grained cost vs KVS-only",
                 safe_ratio(cons_total_us("XFS-coarse"),
                            cons_total_us("DYAD-kvs-only")),
                 "even unoptimized auto-sync beats manual sync");
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, make_cases(), report);
}
