// Co-tenant frontier: victim tail latency vs neighbor intensity, with and
// without the isolation machinery.
//
// A DYAD victim ensemble shares one testbed with a KVS noise storm of
// growing intensity (0 = solo).  Each intensity runs twice: isolation off
// (no quotas, no SLO guard — the storm queues freely underneath the victim
// at the shared broker) and isolation on (weighted fair-share quotas bound
// the storm's in-flight share; the victim's SLO guard staggers production
// and falls back to Lustre when its fetch-P99 target is breached anyway).
// The frontier is the victim's fetch P99 across that grid: the gap between
// the two curves is what the isolation machinery buys, and the intensity-0
// pair pins the solo overhead (the co-tenant runner must match the classic
// runner exactly when nobody shares — the solo contract).
//
//   cotenant_sweep [intensities=0,16,64,128] [frames=4] [reps=2] [pairs=2]
//                  [slo_target_us=4000] [threads=1] [out=<csv path>]
//
// stdout carries one "cotenant:" line per (intensity, isolation) cell and a
// machine-readable "cotenant_sweep:" summary (tools/bench.sh cotenant turns
// it into BENCH_pr8.json).  The CSV excludes wall-clock, so re-runs at any
// thread count are byte-identical.  Exit 0 when every cell ran clean.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "mdwf/common/format.hpp"
#include "mdwf/common/keyval.hpp"
#include "mdwf/sweep/sweep.hpp"
#include "mdwf/tenant/tenant.hpp"
#include "mdwf/workflow/config.hpp"

using namespace mdwf;

namespace {

struct Cell {
  std::uint32_t intensity = 0;
  bool isolation = false;
  double victim_p99_us = 0.0;
  double victim_makespan_s = 0.0;
  std::uint64_t noise_sheds = 0;
  std::uint64_t quota_sheds = 0;
  std::uint64_t slo_escalations = 0;
  std::uint64_t slo_staggered = 0;
  std::uint64_t slo_fallback = 0;
};

std::vector<std::uint32_t> parse_intensities(const std::string& csv) {
  std::vector<std::uint32_t> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) {
      out.push_back(static_cast<std::uint32_t>(
          std::stoul(csv.substr(start, end - start))));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  KeyValueConfig cfg;
  cfg.parse_args(argc, argv);
  const auto intensities =
      parse_intensities(cfg.get_string("intensities", "0,16,64,128"));
  const std::uint64_t frames = cfg.get_uint("frames", 4);
  const auto reps = static_cast<std::uint32_t>(cfg.get_uint("reps", 2));
  const auto pairs = static_cast<std::uint32_t>(cfg.get_uint("pairs", 2));
  const double slo_target = cfg.get_double("slo_target_us", 4000.0);
  const auto threads = static_cast<std::uint32_t>(cfg.get_uint("threads", 1));
  const std::string out_path = cfg.get_string("out", "");

  std::vector<Cell> cells;
  for (const std::uint32_t intensity : intensities) {
    for (const bool isolation : {false, true}) {
      tenant::MultiTenantConfig mc;
      mc.repetitions = reps;
      mc.base_seed = 7;
      mc.threads = threads;
      mc.quota = isolation;

      tenant::TenantSpec victim;
      victim.name = "victim";
      victim.solution = workflow::Solution::kDyad;
      victim.pairs = pairs;
      victim.nodes = 2;
      victim.workload.frames = frames;
      victim.slo = isolation;
      victim.slo_params.fetch_p99_target_us = slo_target;
      // Short bench runs produce few fetch samples per repetition; trust
      // the window early so the guard can act inside the measured run.
      victim.slo_params.min_samples = 4;
      victim.slo_params.holdoff = Duration::milliseconds(100);
      mc.tenants.push_back(victim);

      if (intensity > 0) {
        tenant::TenantSpec storm;
        storm.name = "storm";
        storm.kind = tenant::TenantKind::kNoise;
        storm.nodes = 1;
        storm.noise.intensity = intensity;
        mc.tenants.push_back(storm);
      }

      const tenant::MultiTenantResult r = tenant::run_multi_tenant(mc);
      const auto& vc = r.tenants[0].result.counters;
      Cell cell;
      cell.intensity = intensity;
      cell.isolation = isolation;
      cell.victim_p99_us = r.tenants[0].result.cons_fetch_us.quantile(0.99);
      cell.victim_makespan_s = r.tenants[0].result.makespan_s.mean();
      cell.quota_sheds = vc.get("quota_kvs_sheds") +
                         vc.get("quota_mds_sheds") +
                         vc.get("quota_ost_sheds");
      cell.slo_escalations = vc.get("slo_escalations");
      cell.slo_staggered = vc.get("slo_staggered_frames");
      cell.slo_fallback = vc.get("slo_fallback_frames");
      if (r.tenants.size() > 1) {
        cell.noise_sheds = r.tenants[1].result.counters.get("noise_sheds");
      }
      const std::uint64_t expected =
          static_cast<std::uint64_t>(pairs) * frames * reps;
      if (vc.get("frames_consumed") != expected) {
        std::fprintf(stderr,
                     "cotenant_sweep: victim incomplete at intensity=%u "
                     "isolation=%d\n",
                     intensity, isolation ? 1 : 0);
        return 1;
      }
      cells.push_back(cell);

      std::printf("cotenant: intensity=%u isolation=%s victim_p99_us=%s "
                  "victim_makespan_s=%s noise_sheds=%llu quota_sheds=%llu "
                  "slo_escalations=%llu slo_staggered=%llu "
                  "slo_fallback=%llu\n",
                  intensity, isolation ? "on" : "off",
                  format_double(cell.victim_p99_us, 3).c_str(),
                  format_double(cell.victim_makespan_s, 6).c_str(),
                  static_cast<unsigned long long>(cell.noise_sheds),
                  static_cast<unsigned long long>(cell.quota_sheds),
                  static_cast<unsigned long long>(cell.slo_escalations),
                  static_cast<unsigned long long>(cell.slo_staggered),
                  static_cast<unsigned long long>(cell.slo_fallback));
      std::fflush(stdout);
    }
  }

  // Solo contract: the intensity-0, isolation-off cell must reproduce the
  // classic runner exactly (same makespan to the bit) — that IS the solo
  // overhead figure, measured in simulated time rather than noisy wall ms.
  // Only meaningful when the grid includes intensity 0.
  bool has_solo = false;
  double solo_makespan = 0.0;
  for (const Cell& c : cells) {
    if (c.intensity == 0 && !c.isolation) {
      has_solo = true;
      solo_makespan = c.victim_makespan_s;
    }
  }
  double classic_makespan = 0.0;
  double solo_overhead_pct = 0.0;
  if (has_solo) {
    workflow::EnsembleConfig classic;
    classic.solution = workflow::Solution::kDyad;
    classic.pairs = pairs;
    classic.nodes = 2;
    classic.workload.frames = frames;
    classic.repetitions = reps;
    classic.base_seed = 7;
    classic.threads = threads;
    classic_makespan = sweep::run_ensemble(classic).makespan_s.mean();
    solo_overhead_pct = classic_makespan > 0.0
                            ? (solo_makespan / classic_makespan - 1.0) * 100.0
                            : 0.0;
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << "intensity,isolation,victim_p99_us,victim_makespan_s,noise_sheds,"
           "quota_sheds,slo_escalations,slo_staggered,slo_fallback\n";
    for (const Cell& c : cells) {
      out << c.intensity << "," << (c.isolation ? "on" : "off") << ","
          << format_double(c.victim_p99_us, 6) << ","
          << format_double(c.victim_makespan_s, 9) << "," << c.noise_sheds
          << "," << c.quota_sheds << "," << c.slo_escalations << ","
          << c.slo_staggered << "," << c.slo_fallback << "\n";
    }
  }

  // Headline: the improvement factor at the highest shared intensity.
  double worst_off = 0.0, worst_on = 0.0;
  std::uint32_t worst_intensity = 0;
  for (const Cell& c : cells) {
    if (c.intensity >= worst_intensity && c.intensity > 0) {
      worst_intensity = c.intensity;
      (c.isolation ? worst_on : worst_off) = c.victim_p99_us;
    }
  }
  const double improvement =
      worst_on > 0.0 ? worst_off / worst_on : 1.0;
  std::printf("cotenant_sweep: cells=%zu solo_makespan_classic=%s "
              "solo_makespan_cotenant=%s solo_overhead_pct=%s "
              "worst_intensity=%u p99_off=%s p99_on=%s improvement=%s\n",
              cells.size(), format_double(classic_makespan, 9).c_str(),
              format_double(solo_makespan, 9).c_str(),
              format_double(solo_overhead_pct, 4).c_str(), worst_intensity,
              format_double(worst_off, 3).c_str(),
              format_double(worst_on, 3).c_str(),
              format_double(improvement, 3).c_str());
  return 0;
}
