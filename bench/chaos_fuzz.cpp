// Chaos fuzzing: randomized gray-failure schedules vs workflow invariants.
//
// Property-based companion to resilience_sweep: instead of a fixed scenario
// grid, each schedule draws a random solution, fault plan (a named scenario,
// a membership scenario — permanent node loss / healed partition, run with
// the membership plane armed — or a composite of random fail-slow / lossy /
// overload / bit-flip windows), workload size, seed, and health/hedge
// toggles — then runs the ensemble and checks the invariants every recovery
// path promises:
//
//   * completeness    every expected frame is consumed exactly once
//   * integrity       zero unrecovered corrupt reads (checksum runs)
//   * liveness        the run reaches quiescence with a positive makespan
//   * determinism     re-running the identical schedule is bit-identical
//                     (checked on a rotating subset to bound runtime)
//
// On a violation the harness shrinks the schedule — dropping fault windows
// and halving the frame count while the failure persists — and prints a
// minimal reproducer (master seed + schedule index re-derive everything),
// also written to chaos_repro_<index>.txt for CI artifact upload.
//
//   chaos_fuzz [schedules=60] [seed=20260806] [only=<index>] [verbose=1]
//             [threads=1] [cotenant=0] [dag=0]
//
// threads=N fans the independent schedule checks across the sweep engine's
// work-stealing pool; the canonically-first (lowest-index) violation is
// reported and shrunk regardless of which worker found it first, so output
// and exit code match the serial run.
//
// cotenant=1 fuzzes multi-tenant co-schedules instead: each schedule places
// a healthy victim ensemble next to 1-2 chaotic neighbors (workflow tenants
// with crash/bit-flip/overload scenarios, or KVS noise storms) on one
// shared testbed and checks the cross-tenant invariants — every workflow
// tenant still consumes all its frames, nothing loses data, chaos in a
// neighbor never triggers the healthy tenants' recovery machinery, and the
// merged CSV is byte-identical across worker thread counts.
//
// dag=1 fuzzes DAG workload execution instead: each schedule draws a random
// synthetic topology (chain / fork-join / montage), task budget, edge
// payload size, solution, and a recoverable fault plan (the node-loss
// family is excluded — DAG runs have no membership plane), then checks the
// same invariants with the DAG's edge-frame total as the completeness
// denominator.  Shrinking drops fault windows first, then halves the task
// budget; reproducers land in chaos_repro_dag_<index>.txt.
//
// Exit code 0 when every schedule holds, 1 with a reproducer otherwise.
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mdwf/common/format.hpp"
#include "mdwf/common/keyval.hpp"
#include "mdwf/common/rng.hpp"
#include "mdwf/fault/plan.hpp"
#include "mdwf/sweep/sweep.hpp"
#include "mdwf/tenant/tenant.hpp"
#include "mdwf/wload/wload.hpp"
#include "mdwf/workflow/dag_run.hpp"
#include "mdwf/workflow/ensemble.hpp"

namespace {

using namespace mdwf;
using workflow::EnsembleConfig;
using workflow::EnsembleResult;
using workflow::Placement;
using workflow::Solution;

// Named scenarios safe for every solution (fail-slow or recoverable faults;
// DYAD always runs with its full recovery protocol here).
const std::vector<std::string> kNamedPool = {
    "none",      "slow-nvme",  "slow-disk", "lossy-link",
    "overload",  "ost-storm",  "flaky-fabric", "broker-outage",
    "node-crash", "bit-flip",  "crash-flip"};

// Scenarios that need the membership plane armed: permanent loss (with and
// without a straddling publish), a healed partition (the zombie-fencing
// path), and plain crash-recovery run under the plane's heartbeats.  Without
// the plane a permanent loss ends in the deadlock reporter by design — that
// termination path has its own directed test, so the fuzzer always enables
// membership for these.
const std::vector<std::string> kMembershipPool = {
    "node-loss", "loss-after-publish", "heal-after-declare", "node-crash"};

struct Schedule {
  std::uint32_t index = 0;
  Solution solution = Solution::kDyad;
  std::string scenario;  // named scenario, or "composite"
  std::vector<fault::FaultWindow> windows;  // resolved plan
  std::uint64_t seed = 1;
  std::uint64_t frames = 8;
  std::uint32_t pairs = 1;
  bool health = false;
  bool hedge = false;
  bool integrity = false;
  bool membership = false;
};

bool has_corruption_or_crash(const std::vector<fault::FaultWindow>& ws) {
  for (const auto& w : ws) {
    if (w.mode == fault::FaultMode::kBitFlip ||
        w.mode == fault::FaultMode::kCrash ||
        w.mode == fault::FaultMode::kKill) {
      return true;
    }
  }
  return false;
}

// A random degraded-mode window against a random gray target (plus the
// occasional silent-corruption window so integrity re-fetch is exercised).
fault::FaultWindow random_window(Rng& rng, std::uint32_t nodes) {
  fault::FaultWindow w;
  w.start = TimePoint::origin() +
            Duration::seconds(rng.uniform(0.2, 2.0));
  w.duration = Duration::seconds(rng.uniform(0.5, 10.0));
  switch (rng.next_below(5)) {
    case 0:
      w.target = fault::FaultTarget::kSlowDevice;
      w.index = static_cast<std::uint32_t>(rng.next_below(nodes));
      w.mode = fault::FaultMode::kFailSlow;
      w.severity = rng.uniform(0.3, 0.95);
      break;
    case 1:
      w.target = fault::FaultTarget::kLossyLink;
      w.index = static_cast<std::uint32_t>(rng.next_below(nodes));
      w.mode = fault::FaultMode::kLossy;
      w.severity = rng.uniform(0.05, 0.4);
      break;
    case 2:
      w.target = fault::FaultTarget::kSlowNode;
      w.index = static_cast<std::uint32_t>(rng.next_below(nodes));
      w.mode = fault::FaultMode::kFailSlow;
      w.severity = rng.uniform(0.2, 0.8);
      break;
    case 3:
      w.target = fault::FaultTarget::kOverloadedServer;
      w.index = static_cast<std::uint32_t>(rng.next_below(2));
      w.mode = fault::FaultMode::kFailSlow;
      w.severity = rng.uniform(0.5, 0.99);
      break;
    default:
      w.target = rng.bernoulli(0.5) ? fault::FaultTarget::kNodeSsd
                                    : fault::FaultTarget::kNodeLink;
      w.index = static_cast<std::uint32_t>(rng.next_below(nodes));
      w.mode = fault::FaultMode::kBitFlip;
      w.severity = rng.uniform(0.005, 0.02);
      break;
  }
  return w;
}

constexpr std::uint32_t kNodes = 2;

// Derives schedule `index` from the master seed alone: the (seed, index)
// pair IS the reproducer.
Schedule draw_schedule(std::uint64_t master_seed, std::uint32_t index) {
  Rng rng = Rng(master_seed).fork("chaos:" + std::to_string(index));
  Schedule s;
  s.index = index;
  switch (index % 4) {
    case 0: s.solution = Solution::kDyad; break;
    case 1: s.solution = Solution::kXfs; break;
    case 2: s.solution = Solution::kLustre; break;
    default: s.solution = Solution::kStream; break;
  }
  s.frames = 8 + rng.next_below(8);
  s.pairs = 1 + static_cast<std::uint32_t>(rng.next_below(2));
  s.seed = 1 + rng.next_below(1u << 20);
  s.health = rng.bernoulli(0.5);
  s.hedge = s.health && rng.bernoulli(0.7);

  if (rng.bernoulli(0.25)) {
    s.membership = true;
    s.scenario = kMembershipPool[rng.next_below(kMembershipPool.size())];
    fault::ScenarioShape shape;
    shape.compute_nodes = kNodes;
    shape.seed = s.seed;
    s.windows = fault::make_scenario(s.scenario, shape).windows;
  } else if (rng.bernoulli(0.5)) {
    s.scenario = kNamedPool[rng.next_below(kNamedPool.size())];
    fault::ScenarioShape shape;
    shape.compute_nodes = kNodes;
    shape.seed = s.seed;
    s.windows = fault::make_scenario(s.scenario, shape).windows;
  } else {
    s.scenario = "composite";
    const std::uint64_t count = 1 + rng.next_below(4);
    for (std::uint64_t i = 0; i < count; ++i) {
      s.windows.push_back(random_window(rng, kNodes));
    }
  }
  s.integrity = has_corruption_or_crash(s.windows) || rng.bernoulli(0.25);
  return s;
}

EnsembleConfig make_config(const Schedule& s) {
  EnsembleConfig cfg;
  cfg.solution = s.solution;
  cfg.pairs = s.pairs;
  cfg.nodes = kNodes;
  cfg.placement =
      s.solution == Solution::kXfs ? Placement::kColocated : Placement::kSplit;
  cfg.workload.frames = s.frames;
  cfg.repetitions = 1;
  cfg.base_seed = s.seed;
  cfg.testbed.faults.windows = s.windows;
  cfg.testbed.faults.seed = s.seed;
  cfg.testbed.integrity.enabled = s.integrity;
  cfg.testbed.membership.enabled = s.membership;
  if (s.solution == Solution::kDyad) {
    cfg.testbed.dyad.retry.enabled = true;
    cfg.testbed.dyad.retry.lustre_fallback = true;
    cfg.testbed.dyad.health.enabled = s.health;
    cfg.testbed.dyad.health.hedge.enabled = s.hedge;
  }
  if (s.solution == Solution::kStream) {
    cfg.testbed.stream.health.enabled = s.health;
    cfg.testbed.stream.health.hedge.enabled = s.hedge;
  }
  return cfg;
}

// Checks every invariant; returns the first violation's description.
std::optional<std::string> violation(const Schedule& s,
                                     const EnsembleResult& r) {
  const std::uint64_t expected = s.pairs * s.frames;
  if (r.counters.get("frames_consumed") != expected) {
    return "completeness: consumed " + std::to_string(r.counters.get("frames_consumed")) +
           " of " + std::to_string(expected) + " frames";
  }
  if (r.counters.get("integrity_unrecovered") != 0) {
    return "integrity: " + std::to_string(r.counters.get("integrity_unrecovered")) +
           " unrecovered corrupt reads";
  }
  if (r.counters.get("frames_lost") != 0) {
    return "zero-loss: " + std::to_string(r.counters.get("frames_lost")) +
           " frames lost to a declared node";
  }
  if (!(r.makespan_s.mean() > 0.0)) {
    return "liveness: non-positive makespan " +
           format_double(r.makespan_s.mean(), 6);
  }
  return std::nullopt;
}

std::optional<std::string> check_once(const Schedule& s) {
  return violation(s, workflow::run_ensemble(make_config(s)));
}

// Determinism invariant: the identical schedule replayed must be
// bit-identical in timing and counters.
std::optional<std::string> check_determinism(const Schedule& s) {
  const EnsembleResult a = workflow::run_ensemble(make_config(s));
  const EnsembleResult b = workflow::run_ensemble(make_config(s));
  if (a.makespan_s.mean() != b.makespan_s.mean()) {
    return "determinism: makespan " + format_double(a.makespan_s.mean(), 9) +
           " != " + format_double(b.makespan_s.mean(), 9);
  }
  for (const char* key : {"kvs_lookups", "frames_consumed", "dyad_hedges",
                          "dyad_breaker_trips", "integrity_refetches",
                          "membership_declares", "rank_migrations",
                          "stale_epoch_rejects"}) {
    if (a.counters.get(key) != b.counters.get(key)) {
      return std::string("determinism: counter ") + key + " " +
             std::to_string(a.counters.get(key)) + " != " +
             std::to_string(b.counters.get(key));
    }
  }
  return std::nullopt;
}

std::string describe(const Schedule& s) {
  std::string out = "schedule " + std::to_string(s.index) + ": " +
                    std::string(workflow::to_string(s.solution)) + " " +
                    s.scenario + " seed=" + std::to_string(s.seed) +
                    " frames=" + std::to_string(s.frames) +
                    " pairs=" + std::to_string(s.pairs) +
                    (s.health ? " health" : "") + (s.hedge ? " hedge" : "") +
                    (s.integrity ? " integrity" : "") +
                    (s.membership ? " membership" : "") + ", " +
                    std::to_string(s.windows.size()) + " windows";
  for (const auto& w : s.windows) {
    out += "\n    " + std::string(fault::to_string(w.target)) + "[" +
           std::to_string(w.index) + "] " +
           std::string(fault::to_string(w.mode)) + " sev=" +
           format_double(w.severity, 3) + " at " +
           format_double((w.start - TimePoint::origin()).to_seconds(), 3) +
           "s for " + format_double(w.duration.to_seconds(), 3) + "s";
  }
  return out;
}

// Greedy ddmin-style shrink: drop fault windows one at a time, then halve
// the frame count, keeping every step that still reproduces the violation.
Schedule shrink(Schedule s, const std::string& original) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < s.windows.size(); ++i) {
      Schedule candidate = s;
      candidate.windows.erase(candidate.windows.begin() +
                              static_cast<long>(i));
      if (check_once(candidate).has_value()) {
        s = candidate;
        progressed = true;
        break;
      }
    }
  }
  while (s.frames > 1) {
    Schedule candidate = s;
    candidate.frames /= 2;
    if (!check_once(candidate).has_value()) break;
    s = candidate;
  }
  (void)original;
  return s;
}

void write_reproducer(const Schedule& minimal, std::uint64_t master_seed,
                      const std::string& what) {
  const std::string path =
      "chaos_repro_" + std::to_string(minimal.index) + ".txt";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f, "violation: %s\nreproduce: chaos_fuzz seed=%llu only=%u\n"
                 "minimal %s\n",
                 what.c_str(),
                 static_cast<unsigned long long>(master_seed), minimal.index,
                 describe(minimal).c_str());
    std::fclose(f);
    std::printf("reproducer written to %s\n", path.c_str());
  }
}

// --- DAG workload mode ----------------------------------------------------

// One randomized DAG schedule: a synthetic graph spec plus the same fault/
// toggle surface as the classic mode.  The graph is regenerated from the
// spec on every check, so shrinking the task budget stays deterministic.
struct DagSchedule {
  std::uint32_t index = 0;
  Solution solution = Solution::kDyad;
  std::string scenario;
  std::vector<fault::FaultWindow> windows;
  wload::SynthSpec spec;
  Bytes chunk = Bytes::mib(1);
  std::uint64_t seed = 1;
  bool health = false;
  bool hedge = false;
  bool integrity = false;
};

// Derives DAG schedule `index` from the master seed alone.  The scenario
// pool is the recoverable subset only: the node-loss family needs the
// membership plane, which DAG runs reject.
DagSchedule draw_dag_schedule(std::uint64_t master_seed, std::uint32_t index) {
  Rng rng = Rng(master_seed).fork("dagchaos:" + std::to_string(index));
  DagSchedule s;
  s.index = index;
  switch (index % 4) {
    case 0: s.solution = Solution::kDyad; break;
    case 1: s.solution = Solution::kXfs; break;
    case 2: s.solution = Solution::kLustre; break;
    default: s.solution = Solution::kStream; break;
  }
  switch (rng.next_below(3)) {
    case 0: s.spec.topology = wload::Topology::kChain; break;
    case 1: s.spec.topology = wload::Topology::kForkJoin; break;
    default: s.spec.topology = wload::Topology::kMontage; break;
  }
  s.spec.tasks = 4 + static_cast<std::uint32_t>(rng.next_below(7));
  s.spec.width = 2 + static_cast<std::uint32_t>(rng.next_below(3));
  s.spec.seed = 1 + rng.next_below(1u << 16);
  s.spec.runtime_median_s = 0.3;
  // 0.5-4 MiB payloads over a 1 MiB chunk: a mix of single- and
  // multi-frame edges.
  s.spec.output_median_bytes = (512.0 + rng.uniform(0.0, 3584.0)) * 1024.0;
  s.seed = 1 + rng.next_below(1u << 20);
  s.health = rng.bernoulli(0.5);
  s.hedge = s.health && rng.bernoulli(0.7);

  if (rng.bernoulli(0.6)) {
    s.scenario = kNamedPool[rng.next_below(kNamedPool.size())];
    fault::ScenarioShape shape;
    shape.compute_nodes = kNodes;
    shape.seed = s.seed;
    s.windows = fault::make_scenario(s.scenario, shape).windows;
  } else {
    s.scenario = "composite";
    const std::uint64_t count = 1 + rng.next_below(4);
    for (std::uint64_t i = 0; i < count; ++i) {
      s.windows.push_back(random_window(rng, kNodes));
    }
  }
  s.integrity = has_corruption_or_crash(s.windows) || rng.bernoulli(0.25);
  return s;
}

EnsembleConfig make_config(const DagSchedule& s) {
  EnsembleConfig cfg;
  cfg.solution = s.solution;
  cfg.nodes = s.solution == Solution::kXfs ? 1 : kNodes;
  cfg.repetitions = 1;
  cfg.base_seed = s.seed;
  cfg.dag = std::make_shared<const wload::Dag>(
      wload::generate_synthetic(s.spec));
  cfg.dag_chunk = s.chunk;
  cfg.testbed.faults.windows = s.windows;
  cfg.testbed.faults.seed = s.seed;
  cfg.testbed.integrity.enabled = s.integrity;
  if (s.solution == Solution::kDyad) {
    cfg.testbed.dyad.retry.enabled = true;
    cfg.testbed.dyad.retry.lustre_fallback = true;
    cfg.testbed.dyad.health.enabled = s.health;
    cfg.testbed.dyad.health.hedge.enabled = s.hedge;
  }
  if (s.solution == Solution::kStream) {
    cfg.testbed.stream.health.enabled = s.health;
    cfg.testbed.stream.health.hedge.enabled = s.hedge;
  }
  return cfg;
}

// Invariants with the DAG's edge-frame total as the denominator; distinct
// progress only, so crash re-execution never inflates completeness.
std::optional<std::string> violation(const DagSchedule& s,
                                     const EnsembleConfig& cfg,
                                     const EnsembleResult& r) {
  const workflow::DagPlan plan =
      workflow::plan_dag(*cfg.dag, cfg.dag_chunk, cfg.nodes);
  if (r.counters.get("frames_consumed") != plan.total_edge_frames) {
    return "completeness: consumed " +
           std::to_string(r.counters.get("frames_consumed")) + " of " +
           std::to_string(plan.total_edge_frames) + " edge-frames";
  }
  if (r.counters.get("frames_lost") != 0) {
    return "zero-loss: " + std::to_string(r.counters.get("frames_lost")) +
           " edge-frames lost";
  }
  if (r.counters.get("integrity_unrecovered") != 0) {
    return "integrity: " +
           std::to_string(r.counters.get("integrity_unrecovered")) +
           " unrecovered corrupt reads";
  }
  if (!(r.makespan_s.mean() > 0.0)) {
    return "liveness: non-positive makespan " +
           format_double(r.makespan_s.mean(), 6);
  }
  (void)s;
  return std::nullopt;
}

std::optional<std::string> check_once(const DagSchedule& s) {
  const EnsembleConfig cfg = make_config(s);
  return violation(s, cfg, workflow::run_ensemble(cfg));
}

std::optional<std::string> check_determinism(const DagSchedule& s) {
  const EnsembleResult a = workflow::run_ensemble(make_config(s));
  const EnsembleResult b = workflow::run_ensemble(make_config(s));
  if (a.makespan_s.mean() != b.makespan_s.mean()) {
    return "determinism: makespan " + format_double(a.makespan_s.mean(), 9) +
           " != " + format_double(b.makespan_s.mean(), 9);
  }
  for (const char* key :
       {"kvs_lookups", "frames_consumed", "frames_reexecuted",
        "crash_recoveries", "stream_spills", "integrity_refetches"}) {
    if (a.counters.get(key) != b.counters.get(key)) {
      return std::string("determinism: counter ") + key + " " +
             std::to_string(a.counters.get(key)) + " != " +
             std::to_string(b.counters.get(key));
    }
  }
  return std::nullopt;
}

std::string describe(const DagSchedule& s) {
  std::string out =
      "dag-schedule " + std::to_string(s.index) + ": " +
      std::string(workflow::to_string(s.solution)) + " synth:" +
      std::string(wload::topology_name(s.spec.topology)) +
      " tasks=" + std::to_string(s.spec.tasks) +
      " width=" + std::to_string(s.spec.width) +
      " dag_seed=" + std::to_string(s.spec.seed) +
      " bytes~" + std::to_string(
          static_cast<std::uint64_t>(s.spec.output_median_bytes)) +
      " " + s.scenario + " seed=" + std::to_string(s.seed) +
      (s.health ? " health" : "") + (s.hedge ? " hedge" : "") +
      (s.integrity ? " integrity" : "") + ", " +
      std::to_string(s.windows.size()) + " windows";
  for (const auto& w : s.windows) {
    out += "\n    " + std::string(fault::to_string(w.target)) + "[" +
           std::to_string(w.index) + "] " +
           std::string(fault::to_string(w.mode)) + " sev=" +
           format_double(w.severity, 3) + " at " +
           format_double((w.start - TimePoint::origin()).to_seconds(), 3) +
           "s for " + format_double(w.duration.to_seconds(), 3) + "s";
  }
  return out;
}

// ddmin for DAG schedules: drop fault windows one at a time, then halve
// the task budget (the graph regenerates from the smaller spec, so the
// minimal reproducer is still derived from (seed, index) + the printout).
DagSchedule shrink(DagSchedule s) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < s.windows.size(); ++i) {
      DagSchedule candidate = s;
      candidate.windows.erase(candidate.windows.begin() +
                              static_cast<long>(i));
      if (check_once(candidate).has_value()) {
        s = candidate;
        progressed = true;
        break;
      }
    }
  }
  while (s.spec.tasks > 2) {
    DagSchedule candidate = s;
    candidate.spec.tasks /= 2;
    if (!check_once(candidate).has_value()) break;
    s = candidate;
  }
  return s;
}

int run_dag_fuzz(std::uint64_t schedules, std::uint64_t master_seed,
                 std::int64_t only, bool verbose, std::uint32_t threads) {
  struct Outcome {
    DagSchedule s;
    std::optional<std::string> bad;
    bool checked = false;
  };
  std::vector<Outcome> outcomes(schedules);
  std::vector<std::function<void()>> checks;
  for (std::uint32_t i = 0; i < schedules; ++i) {
    if (only >= 0 && static_cast<std::int64_t>(i) != only) continue;
    checks.push_back([&outcomes, master_seed, only, i] {
      Outcome& o = outcomes[i];
      o.s = draw_dag_schedule(master_seed, i);
      o.bad = (i % 8 == 0 || only >= 0) ? check_determinism(o.s)
                                        : std::nullopt;
      if (!o.bad.has_value()) o.bad = check_once(o.s);
      o.checked = true;
    });
  }
  sweep::run_tasks(std::move(checks), threads);

  std::uint64_t ran = 0;
  for (std::uint32_t i = 0; i < schedules; ++i) {
    const Outcome& o = outcomes[i];
    if (!o.checked) continue;
    ++ran;
    if (verbose) std::printf("%s\n", describe(o.s).c_str());
    if (!o.bad.has_value()) continue;

    std::printf("FAILED %s\n  %s\nshrinking...\n", describe(o.s).c_str(),
                o.bad->c_str());
    const DagSchedule minimal = shrink(o.s);
    const std::string repro = "chaos_fuzz dag=1 seed=" +
                              std::to_string(master_seed) +
                              " only=" + std::to_string(i);
    std::printf("minimal %s\n  reproduce: %s\n", describe(minimal).c_str(),
                repro.c_str());
    const std::string path = "chaos_repro_dag_" + std::to_string(i) + ".txt";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fprintf(f, "violation: %s\nreproduce: %s\nminimal %s\n",
                   o.bad->c_str(), repro.c_str(), describe(minimal).c_str());
      std::fclose(f);
      std::printf("reproducer written to %s\n", path.c_str());
    }
    return 1;
  }
  std::printf("chaos_fuzz: %llu DAG schedules held every invariant "
              "(completeness, zero-loss, integrity, liveness, determinism) "
              "[seed=%llu]\n",
              static_cast<unsigned long long>(ran),
              static_cast<unsigned long long>(master_seed));
  return 0;
}

// --- Co-tenant mode ------------------------------------------------------

// Scenarios a chaotic neighbor may run: node-scoped chaos (shifted onto its
// own slice) and shared-service overload.  "none" keeps some neighbors
// healthy so quota/SLO idle paths are fuzzed too.
const std::vector<std::string> kTenantScenarioPool = {
    "none", "node-crash", "bit-flip", "crash-flip", "overload", "rank-kill"};

struct CoSchedule {
  std::uint32_t index = 0;
  tenant::MultiTenantConfig config;
};

bool scenario_corrupts(const std::string& name) {
  return name == "bit-flip" || name == "crash-flip" || name == "node-crash" ||
         name == "rank-kill";
}

tenant::TenantSpec draw_workflow_tenant(Rng& rng, const std::string& name,
                                        bool healthy) {
  tenant::TenantSpec t;
  t.name = name;
  switch (rng.next_below(4)) {
    case 0: t.solution = Solution::kDyad; break;
    case 1: t.solution = Solution::kXfs; break;
    case 2: t.solution = Solution::kLustre; break;
    default: t.solution = Solution::kStream; break;
  }
  if (t.solution == Solution::kXfs) {
    t.nodes = 1;
    t.placement = workflow::Placement::kColocated;
  } else {
    t.nodes = 2;
  }
  t.pairs = 1 + static_cast<std::uint32_t>(rng.next_below(2));
  t.workload.frames = 4 + rng.next_below(5);
  t.faults = healthy
                 ? "none"
                 : kTenantScenarioPool[rng.next_below(
                       kTenantScenarioPool.size())];
  t.slo = rng.bernoulli(0.5);
  t.weight = rng.bernoulli(0.25) ? 2.0 : 1.0;
  return t;
}

// Derives co-schedule `index` from the master seed alone, like
// draw_schedule: tenant 0 is always a healthy victim, followed by 1-2
// chaotic neighbors (workflow chaos or a KVS noise storm).
CoSchedule draw_cotenant_schedule(std::uint64_t master_seed,
                                  std::uint32_t index) {
  Rng rng = Rng(master_seed).fork("cochaos:" + std::to_string(index));
  CoSchedule s;
  s.index = index;
  tenant::MultiTenantConfig& mc = s.config;
  mc.repetitions = 1;
  mc.threads = 1;
  mc.base_seed = 1 + rng.next_below(1u << 20);
  mc.quota = rng.bernoulli(0.7);

  mc.tenants.push_back(draw_workflow_tenant(rng, "victim", /*healthy=*/true));
  const std::uint64_t neighbors = 1 + rng.next_below(2);
  for (std::uint64_t i = 0; i < neighbors; ++i) {
    const std::string name = "n" + std::to_string(i);
    if (rng.bernoulli(0.4)) {
      tenant::TenantSpec t;
      t.name = name;
      t.kind = tenant::TenantKind::kNoise;
      t.nodes = 1;
      t.noise.intensity = 8 + static_cast<std::uint32_t>(rng.next_below(17));
      mc.tenants.push_back(t);
    } else {
      mc.tenants.push_back(
          draw_workflow_tenant(rng, name, /*healthy=*/false));
    }
  }
  // End-to-end integrity whenever any neighbor's plan can corrupt or tear
  // frames, as the key=value binding defaults it.
  bool corrupts = false;
  for (const auto& t : mc.tenants) corrupts |= scenario_corrupts(t.faults);
  mc.testbed.integrity.enabled = corrupts || rng.bernoulli(0.25);
  return s;
}

std::string describe(const CoSchedule& s) {
  // Printed in the driver's tenants= grammar, so the reproducer line can be
  // replayed under mdwf_run directly as well.
  std::string tenants;
  for (const auto& t : s.config.tenants) {
    if (!tenants.empty()) tenants += ",";
    if (t.kind == tenant::TenantKind::kNoise) {
      tenants += t.name + "@noise/" + std::to_string(t.noise.intensity);
    } else {
      tenants += t.name + "@" +
                 std::string(workflow::to_string(t.solution)) + "/" +
                 std::to_string(t.pairs) + "/" + std::to_string(t.nodes) +
                 "/" + t.faults + "/" + format_double(t.weight, 1);
    }
  }
  return "co-schedule " + std::to_string(s.index) + ": tenants=" + tenants +
         " seed=" + std::to_string(s.config.base_seed) +
         (s.config.quota ? " quota" : "") +
         (s.config.testbed.integrity.enabled ? " integrity" : "");
}

// Cross-tenant invariants: completeness and liveness for every workflow
// tenant (chaotic ones must recover), zero unrecovered corruption anywhere,
// and — the isolation core — zero recovery activity in healthy tenants.
std::optional<std::string> violation(const CoSchedule& s,
                                     const tenant::MultiTenantResult& r) {
  for (const auto& tr : r.tenants) {
    if (tr.spec.kind != tenant::TenantKind::kWorkflow) continue;
    const auto& c = tr.result.counters;
    const std::uint64_t expected =
        static_cast<std::uint64_t>(tr.spec.pairs) * tr.spec.workload.frames;
    if (c.get("frames_consumed") != expected) {
      return "completeness[" + tr.spec.name + "]: consumed " +
             std::to_string(c.get("frames_consumed")) + " of " +
             std::to_string(expected) + " frames";
    }
    if (!(tr.result.makespan_s.mean() > 0.0)) {
      return "liveness[" + tr.spec.name + "]: non-positive makespan";
    }
    const bool healthy = tr.spec.faults.empty() || tr.spec.faults == "none";
    if (healthy) {
      for (const char* key :
           {"crash_recoveries", "frames_reexecuted", "checkpoint_restores"}) {
        if (c.get(key) != 0) {
          return "isolation[" + tr.spec.name + "]: healthy tenant has " +
                 std::to_string(c.get(key)) + " " + key;
        }
      }
    }
  }
  if (r.shared.get("integrity_unrecovered") != 0) {
    return "integrity: " +
           std::to_string(r.shared.get("integrity_unrecovered")) +
           " unrecovered corrupt reads";
  }
  return std::nullopt;
}

std::optional<std::string> check_once(const CoSchedule& s) {
  return violation(s, tenant::run_multi_tenant(s.config));
}

// Thread-count determinism: the merged CSV (the canonical serialization of
// every sample and counter) must be byte-identical when the repetitions fan
// across a pool.  Checked with reps=2 so there is something to fold.
std::optional<std::string> check_cotenant_determinism(const CoSchedule& s) {
  CoSchedule rep = s;
  rep.config.repetitions = 2;
  rep.config.threads = 1;
  const std::string serial = tenant::run_multi_tenant(rep.config).to_csv();
  rep.config.threads = 2;
  const std::string pooled = tenant::run_multi_tenant(rep.config).to_csv();
  if (serial != pooled) {
    return "determinism: merged CSV differs between threads=1 and threads=2";
  }
  return std::nullopt;
}

// Shrink: drop neighbor tenants while the violation persists, then halve
// every workflow tenant's frame count.
CoSchedule shrink(CoSchedule s) {
  bool progressed = true;
  while (progressed && s.config.tenants.size() > 1) {
    progressed = false;
    for (std::size_t i = 1; i < s.config.tenants.size(); ++i) {
      CoSchedule candidate = s;
      candidate.config.tenants.erase(candidate.config.tenants.begin() +
                                     static_cast<long>(i));
      if (check_once(candidate).has_value()) {
        s = candidate;
        progressed = true;
        break;
      }
    }
  }
  progressed = true;
  while (progressed) {
    progressed = false;
    CoSchedule candidate = s;
    for (auto& t : candidate.config.tenants) {
      if (t.kind == tenant::TenantKind::kWorkflow && t.workload.frames > 1) {
        t.workload.frames /= 2;
        progressed = true;
      }
    }
    if (!progressed || !check_once(candidate).has_value()) break;
    s = candidate;
  }
  return s;
}

int run_cotenant_fuzz(std::uint64_t schedules, std::uint64_t master_seed,
                      std::int64_t only, bool verbose,
                      std::uint32_t threads) {
  struct Outcome {
    CoSchedule s;
    std::optional<std::string> bad;
    bool checked = false;
  };
  std::vector<Outcome> outcomes(schedules);
  std::vector<std::function<void()>> checks;
  for (std::uint32_t i = 0; i < schedules; ++i) {
    if (only >= 0 && static_cast<std::int64_t>(i) != only) continue;
    checks.push_back([&outcomes, master_seed, only, i] {
      Outcome& o = outcomes[i];
      o.s = draw_cotenant_schedule(master_seed, i);
      o.bad = (i % 8 == 0 || only >= 0) ? check_cotenant_determinism(o.s)
                                        : std::nullopt;
      if (!o.bad.has_value()) o.bad = check_once(o.s);
      o.checked = true;
    });
  }
  sweep::run_tasks(std::move(checks), threads);

  std::uint64_t ran = 0;
  for (std::uint32_t i = 0; i < schedules; ++i) {
    const Outcome& o = outcomes[i];
    if (!o.checked) continue;
    ++ran;
    if (verbose) std::printf("%s\n", describe(o.s).c_str());
    if (!o.bad.has_value()) continue;

    std::printf("FAILED %s\n  %s\nshrinking...\n", describe(o.s).c_str(),
                o.bad->c_str());
    const CoSchedule minimal = shrink(o.s);
    const std::string repro = "chaos_fuzz cotenant=1 seed=" +
                              std::to_string(master_seed) +
                              " only=" + std::to_string(i);
    std::printf("minimal %s\n  reproduce: %s\n", describe(minimal).c_str(),
                repro.c_str());
    const std::string path =
        "chaos_repro_cotenant_" + std::to_string(i) + ".txt";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fprintf(f, "violation: %s\nreproduce: %s\nminimal %s\n",
                   o.bad->c_str(), repro.c_str(), describe(minimal).c_str());
      std::fclose(f);
      std::printf("reproducer written to %s\n", path.c_str());
    }
    return 1;
  }
  std::printf("chaos_fuzz: %llu co-tenant schedules held every invariant "
              "(completeness, integrity, liveness, isolation, determinism) "
              "[seed=%llu]\n",
              static_cast<unsigned long long>(ran),
              static_cast<unsigned long long>(master_seed));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  KeyValueConfig cfg;
  cfg.parse_args(argc, argv);
  const std::uint64_t schedules = cfg.get_uint("schedules", 60);
  const std::uint64_t master_seed = cfg.get_uint("seed", 20260806);
  const std::int64_t only = cfg.get_int("only", -1);
  const bool verbose = cfg.get_bool("verbose", false);
  const auto threads = static_cast<std::uint32_t>(cfg.get_uint("threads", 1));
  const bool cotenant = cfg.get_bool("cotenant", false);
  const bool dag = cfg.get_bool("dag", false);
  for (const char* k :
       {"schedules", "seed", "only", "verbose", "threads", "cotenant",
        "dag"}) {
    cfg.note_known(k);
  }

  if (cotenant) {
    return run_cotenant_fuzz(schedules, master_seed, only, verbose, threads);
  }
  if (dag) {
    return run_dag_fuzz(schedules, master_seed, only, verbose, threads);
  }

  // Schedules are independent, so their checks fan across the sweep pool;
  // outcomes land in per-index slots and are reported in index order below,
  // making output and exit code thread-count-invariant.
  struct Outcome {
    Schedule s;
    std::optional<std::string> bad;
    bool checked = false;
  };
  std::vector<Outcome> outcomes(schedules);
  std::vector<std::function<void()>> checks;
  for (std::uint32_t i = 0; i < schedules; ++i) {
    if (only >= 0 && static_cast<std::int64_t>(i) != only) continue;
    checks.push_back([&outcomes, master_seed, only, i] {
      Outcome& o = outcomes[i];
      o.s = draw_schedule(master_seed, i);
      // Every 8th schedule (and any explicitly requested one) is replayed
      // to check bit-identical determinism; the rest run once.
      o.bad = (i % 8 == 0 || only >= 0) ? check_determinism(o.s)
                                        : std::nullopt;
      if (!o.bad.has_value()) o.bad = check_once(o.s);
      o.checked = true;
    });
  }
  sweep::run_tasks(std::move(checks), threads);

  std::uint64_t ran = 0;
  for (std::uint32_t i = 0; i < schedules; ++i) {
    const Outcome& o = outcomes[i];
    if (!o.checked) continue;
    ++ran;
    if (verbose) std::printf("%s\n", describe(o.s).c_str());
    if (!o.bad.has_value()) continue;

    std::printf("FAILED %s\n  %s\nshrinking...\n", describe(o.s).c_str(),
                o.bad->c_str());
    // Shrinking replays candidate schedules serially: it is a fix-up path,
    // and a deterministic reproducer matters more than its wall-clock.
    const Schedule minimal = shrink(o.s, *o.bad);
    std::printf("minimal %s\n  reproduce: chaos_fuzz seed=%llu only=%u\n",
                describe(minimal).c_str(),
                static_cast<unsigned long long>(master_seed), i);
    write_reproducer(minimal, master_seed, *o.bad);
    return 1;
  }
  std::printf("chaos_fuzz: %llu schedules held every invariant "
              "(completeness, integrity, liveness, determinism) "
              "[seed=%llu]\n",
              static_cast<unsigned long long>(ran),
              static_cast<unsigned long long>(master_seed));
  return 0;
}
